//! A lightweight item parser on top of the token stream: struct/enum
//! definitions with field lists, `impl` blocks with their self type, and
//! `fn` definitions with body spans and extracted call sites.
//!
//! This is deliberately *not* a Rust parser (the workspace is offline,
//! so no `syn`): it recognizes exactly the item shapes the structural
//! rules need — enough to attribute a method to its `impl` type, list a
//! struct's named fields, and walk call expressions — and skips
//! everything else. Known limits are documented in `DESIGN.md` §9.

use crate::lexer::{Token, TokenKind};
use crate::scan::{is_ident, is_punct, matching_close};

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field's declaration.
    pub line: u32,
}

/// A `struct` definition with named fields (tuple and unit structs are
/// recorded with an empty field list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
    /// Whether the struct has a named-field body (`{ ... }`).
    pub has_named_fields: bool,
}

/// How a call expression names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a bare path call.
    Free,
    /// `.name(...)` — a method call; `on_self` when the receiver is the
    /// bare `self` token.
    Method {
        /// True for `self.name(...)`.
        on_self: bool,
    },
    /// `Recv::name(...)` — a qualified call; `recv` is the path segment
    /// directly before the callee.
    Path {
        /// The qualifying segment (`Type`, `Self`, or a module name).
        recv: String,
    },
    /// `(...)(...)` — calling the result of an expression (closure,
    /// function pointer, field holding a callable). The call graph
    /// cannot follow these.
    Dynamic,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (empty for [`CallKind::Dynamic`]).
    pub name: String,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: u32,
}

/// A parsed `fn` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (signature start).
    pub sig_start: usize,
    /// Token index of the opening `{` of the body.
    pub body_start: usize,
    /// Token index one past the closing `}`.
    pub body_end: usize,
    /// Self type of the enclosing `impl` block, when any.
    pub owner: Option<String>,
    /// Call sites extracted from the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// True when `ident` occurs anywhere in the signature
    /// (`fn name ... {`), e.g. a parameter type like `SnapWriter`.
    #[must_use]
    pub fn signature_mentions(&self, tokens: &[Token], ident: &str) -> bool {
        tokens
            .get(self.sig_start..self.body_start)
            .unwrap_or(&[])
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == ident))
    }

    /// True when `ident` occurs anywhere in the body.
    #[must_use]
    pub fn body_mentions(&self, tokens: &[Token], ident: &str) -> bool {
        tokens
            .get(self.body_start..self.body_end)
            .unwrap_or(&[])
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == ident))
    }
}

/// Items parsed from one (test-stripped) file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Enum names defined in the file.
    pub enums: Vec<String>,
    /// Functions (free and methods), in source order.
    pub fns: Vec<FnDef>,
}

impl FileItems {
    /// The struct named `name`, if defined in this file.
    #[must_use]
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// All methods of `owner` named `name` (cfg-gated duplicates are all
    /// returned).
    pub fn methods_of<'a>(
        &'a self,
        owner: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = &'a FnDef> {
        self.fns
            .iter()
            .filter(move |f| f.name == name && f.owner.as_deref() == Some(owner))
    }
}

/// Keywords that can directly precede `(` without forming a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "dyn", "else", "fn", "for", "if", "impl", "in",
    "let", "loop", "match", "move", "mut", "pub", "ref", "return", "unsafe", "where", "while",
    "yield",
];

/// Parses the items of one file from its (test-stripped) token stream.
#[must_use]
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    // Innermost-last stack of `impl` blocks: (self type, end token index).
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while impls.last().is_some_and(|(_, end)| i >= *end) {
            impls.pop();
        }
        if is_ident(tokens, i, "struct") {
            let (def, next) = parse_struct(tokens, i);
            if let Some(def) = def {
                out.structs.push(def);
            }
            i = next;
            continue;
        }
        if is_ident(tokens, i, "enum") {
            if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                out.enums.push(name.clone());
            }
            i += 1;
            continue;
        }
        if is_ident(tokens, i, "impl") {
            if let Some((ty, body_open)) = parse_impl_header(tokens, i) {
                if let Some(end) = matching_close(tokens, body_open, '{', '}') {
                    impls.push((ty, end));
                    i = body_open + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if is_ident(tokens, i, "fn") {
            if let Some(def) = parse_fn(tokens, i, impls.last().map(|(ty, _)| ty.as_str())) {
                let next = def.body_end;
                out.fns.push(def);
                // Do not skip the body: nested fns are items too. Step
                // past the name so `fn` itself is not re-matched.
                i = (i + 2).min(next);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses `struct Name ...`, returning the definition (when a name is
/// present) and the index to resume scanning from.
fn parse_struct(tokens: &[Token], i: usize) -> (Option<StructDef>, usize) {
    let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) else {
        return (None, i + 1);
    };
    let line = tokens.get(i).map_or(0, |t| t.line);
    // Scan past generics/where-clause to the defining token: `{` begins
    // named fields, `(` a tuple struct, `;` a unit struct. Angle-bracket
    // depth guards against `>` inside bounds; `->` cannot appear here.
    let mut j = i + 2;
    let mut angle = 0i32;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => {
                let end = matching_close(tokens, j, '{', '}').unwrap_or(tokens.len());
                let fields = parse_named_fields(tokens, j, end);
                return (
                    Some(StructDef {
                        name: name.clone(),
                        line,
                        fields,
                        has_named_fields: true,
                    }),
                    end + 1,
                );
            }
            TokenKind::Punct('(') if angle <= 0 => break,
            TokenKind::Punct(';') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    (
        Some(StructDef {
            name: name.clone(),
            line,
            fields: Vec::new(),
            has_named_fields: false,
        }),
        j + 1,
    )
}

/// Parses the named fields between the braces at `open..=close`.
fn parse_named_fields(tokens: &[Token], open: usize, close: usize) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip field attributes (`#[serde(...)]` style).
        while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
            match matching_close(tokens, j + 1, '[', ']') {
                Some(end) => j = end + 1,
                None => return fields,
            }
        }
        // Skip visibility: `pub` or `pub(crate)` / `pub(in path)`.
        if is_ident(tokens, j, "pub") {
            j += 1;
            if is_punct(tokens, j, '(') {
                match matching_close(tokens, j, '(', ')') {
                    Some(end) => j = end + 1,
                    None => return fields,
                }
            }
        }
        // `name :` (but not `name ::`) starts a field.
        let named = matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Ident(_)))
            && is_punct(tokens, j + 1, ':')
            && !is_punct(tokens, j + 2, ':');
        if named {
            if let Some(t) = tokens.get(j) {
                if let TokenKind::Ident(name) = &t.kind {
                    fields.push(FieldDef {
                        name: name.clone(),
                        line: t.line,
                    });
                }
            }
        }
        // Advance to the comma terminating this field, at brace/paren
        // depth 0 relative to the field (generic commas hide inside
        // `< >`, tuple commas inside `( )`).
        let mut depth = 0i32;
        let mut angle = 0i32;
        while j < close {
            match tokens.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Punct('<')) => angle += 1,
                // `->` in a fn-typed field is not angle nesting.
                Some(TokenKind::Punct('-')) if is_punct(tokens, j + 1, '>') => j += 1,
                Some(TokenKind::Punct('>')) => angle -= 1,
                Some(TokenKind::Punct(',')) if depth <= 0 && angle <= 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    fields
}

/// Parses an `impl` header starting at `i` (the `impl` token): returns
/// the self-type name and the token index of the body's `{`.
///
/// Handles `impl Type`, `impl Trait for Type`, generic parameter lists,
/// paths (`a::b::Type` → `Type`), and generic arguments
/// (`Engine<P>` → `Engine`).
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Generic parameter list directly after `impl`.
    if is_punct(tokens, j, '<') {
        j = skip_angles(tokens, j)?;
    }
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('{') => {
                let ty = after_for.or(last_ident)?;
                return Some((ty, j));
            }
            TokenKind::Ident(s) if s == "for" => {
                // `Trait for Type`: restart collection on the right side.
                after_for = None;
                last_ident = None;
                j += 1;
                continue;
            }
            TokenKind::Ident(s) if s == "where" => {
                // The self type is complete; scan forward to the body.
                let ty = after_for.clone().or(last_ident.clone())?;
                let mut k = j + 1;
                let mut angle = 0i32;
                while let Some(t2) = tokens.get(k) {
                    match t2.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct('{') if angle <= 0 => return Some((ty, k)),
                        _ => {}
                    }
                    k += 1;
                }
                return None;
            }
            TokenKind::Ident(s) => {
                last_ident = Some(s.clone());
                j += 1;
                continue;
            }
            TokenKind::Punct('<') => {
                // Generic arguments of the type just collected: the name
                // is already in `last_ident`; skip the argument list.
                if last_ident.is_some() {
                    after_for = after_for.or_else(|| last_ident.clone());
                }
                j = skip_angles(tokens, j)?;
                continue;
            }
            _ => {
                j += 1;
                continue;
            }
        }
    }
    None
}

/// Skips a balanced `< ... >` run starting at the `<` at `open`.
fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            // `->` inside `Fn() -> T` bounds: the `>` belongs to the
            // arrow, not the angle nesting.
            TokenKind::Punct('-') if is_punct(tokens, j + 1, '>') => {
                j += 2;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `fn` definition starting at `i` (the `fn` token).
fn parse_fn(tokens: &[Token], i: usize, owner: Option<&str>) -> Option<FnDef> {
    let TokenKind::Ident(name) = &tokens.get(i + 1)?.kind else {
        return None;
    };
    let line = tokens.get(i)?.line;
    // Body: first `{` after the signature; a `;` first means a bodyless
    // trait-method declaration. Parens and brackets are skipped whole so
    // the `;` inside `[u8; 8]` (in a parameter or return type) is not
    // mistaken for the declaration terminator.
    let mut j = i + 2;
    let body_start = loop {
        match tokens.get(j)?.kind {
            TokenKind::Punct('{') => break j,
            TokenKind::Punct(';') => return None,
            TokenKind::Punct(open @ ('(' | '[')) => {
                let close = if open == '(' { ')' } else { ']' };
                j = matching_close(tokens, j, open, close)? + 1;
            }
            _ => j += 1,
        }
    };
    let body_end = matching_close(tokens, body_start, '{', '}')? + 1;
    let calls = extract_calls(tokens, body_start, body_end);
    Some(FnDef {
        name: name.clone(),
        line,
        sig_start: i,
        body_start,
        body_end,
        owner: owner.map(str::to_string),
        calls,
    })
}

/// Extracts call sites from `tokens[start..end)`.
fn extract_calls(tokens: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut j = start;
    while j < end {
        let Some(t) = tokens.get(j) else { break };
        if let TokenKind::Ident(name) = &t.kind {
            if is_punct(tokens, j + 1, '(') && !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                // Classify by what precedes the callee identifier.
                let call = if is_punct(tokens, j.wrapping_sub(1), '.') {
                    let on_self = is_ident(tokens, j.wrapping_sub(2), "self")
                        && !is_punct(tokens, j.wrapping_sub(3), '.');
                    Some(CallSite {
                        name: name.clone(),
                        kind: CallKind::Method { on_self },
                        line: t.line,
                    })
                } else if is_punct(tokens, j.wrapping_sub(1), ':')
                    && is_punct(tokens, j.wrapping_sub(2), ':')
                {
                    match tokens.get(j.wrapping_sub(3)).map(|t| &t.kind) {
                        Some(TokenKind::Ident(recv)) => Some(CallSite {
                            name: name.clone(),
                            kind: CallKind::Path { recv: recv.clone() },
                            line: t.line,
                        }),
                        // `>::name(` qualified-path form: treat as free.
                        _ => Some(CallSite {
                            name: name.clone(),
                            kind: CallKind::Free,
                            line: t.line,
                        }),
                    }
                } else if is_ident(tokens, j.wrapping_sub(1), "fn") {
                    None // a nested declaration, not a call
                } else {
                    Some(CallSite {
                        name: name.clone(),
                        kind: CallKind::Free,
                        line: t.line,
                    })
                };
                if let Some(call) = call {
                    out.push(call);
                }
            }
        } else if t.kind == TokenKind::Punct('(') && is_punct(tokens, j.wrapping_sub(1), ')') {
            // `(...)(...)`: calling the result of an expression. Skip
            // tuple-struct patterns and ordinary grouping by requiring
            // the inner expression to not be a control-flow tail — at
            // token level, `)(` only arises for callable values.
            out.push(CallSite {
                name: String::new(),
                kind: CallKind::Dynamic,
                line: t.line,
            });
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn items(src: &str) -> FileItems {
        parse_items(&scan(src).tokens)
    }

    #[test]
    fn structs_fields_and_shapes_are_parsed() {
        let it = items(
            "pub struct A { pub x: u64, y: Vec<(u8, u8)>, pub(crate) z: BTreeMap<u64, u64> }\n\
             struct Tuple(u8, u8);\n\
             struct Unit;\n\
             pub struct Generic<T: Clone> where T: Default { inner: T, n: usize }\n",
        );
        let a = it.struct_named("A").unwrap();
        let names: Vec<&str> = a.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        assert!(a.has_named_fields);
        assert!(!it.struct_named("Tuple").unwrap().has_named_fields);
        assert!(!it.struct_named("Unit").unwrap().has_named_fields);
        let g = it.struct_named("Generic").unwrap();
        let names: Vec<&str> = g.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "n"]);
    }

    #[test]
    fn array_types_in_signatures_do_not_truncate_the_fn() {
        // `[u8; 8]` carries a `;` — it must not read as a bodyless
        // trait-method declaration (that bug silently dropped
        // `encode_record` from the call graph).
        let it = items(
            "fn enc(r: &R, buf: &mut [u8; 8]) { fill(buf) }\n\
             fn footer(count: u64) -> [u8; 16] { make(count) }\n\
             trait T { fn decl(x: [u8; 4]); }\n",
        );
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["enc", "footer"]);
        assert!(it.fns[0].calls.iter().any(|c| c.name == "fill"));
    }

    #[test]
    fn impl_blocks_attribute_methods_to_their_type() {
        let it = items(
            "struct Foo { a: u8 }\n\
             impl Foo { fn m(&self) {} }\n\
             impl Clone for Foo { fn clone(&self) -> Self { Self { a: self.a } } }\n\
             impl<T: Copy> From<T> for Foo where T: Into<u8> { fn from(t: T) -> Self { todo(t) } }\n\
             fn free() {}\n",
        );
        let owners: Vec<(String, Option<String>)> = it
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            owners,
            vec![
                ("m".into(), Some("Foo".into())),
                ("clone".into(), Some("Foo".into())),
                ("from".into(), Some("Foo".into())),
                ("free".into(), None),
            ]
        );
    }

    #[test]
    fn generic_self_types_resolve_to_the_base_name() {
        let it = items(
            "impl<P: ArchPolicy> Engine<P> { fn run(&mut self) {} }\n\
             impl WomCode for Box<C> { fn encode(&self) {} }\n",
        );
        assert_eq!(it.fns[0].owner.as_deref(), Some("Engine"));
        assert_eq!(it.fns[1].owner.as_deref(), Some("Box"));
    }

    #[test]
    fn call_sites_are_classified() {
        let it = items(
            "fn f(&self, cb: impl Fn()) {\n\
                 helper();\n\
                 self.step();\n\
                 other.step();\n\
                 Type::assoc();\n\
                 a::b::leaf();\n\
                 (self.cb)();\n\
                 if x { g() } else { h() }\n\
             }\n",
        );
        let f = &it.fns[0];
        let kinds: Vec<(&str, &CallKind)> =
            f.calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("helper", &CallKind::Free),
                ("step", &CallKind::Method { on_self: true }),
                ("step", &CallKind::Method { on_self: false }),
                (
                    "assoc",
                    &CallKind::Path {
                        recv: "Type".into()
                    }
                ),
                ("leaf", &CallKind::Path { recv: "b".into() }),
                ("", &CallKind::Dynamic),
                ("g", &CallKind::Free),
                ("h", &CallKind::Free),
            ]
        );
    }

    #[test]
    fn signature_and_body_mention_checks_work() {
        let s = scan("fn save_state(&self, w: &mut SnapWriter) { w.put_u64(self.count); }\n");
        let it = parse_items(&s.tokens);
        let f = &it.fns[0];
        assert!(f.signature_mentions(&s.tokens, "SnapWriter"));
        assert!(!f.signature_mentions(&s.tokens, "SnapReader"));
        assert!(f.body_mentions(&s.tokens, "count"));
        assert!(!f.body_mentions(&s.tokens, "missing"));
    }

    #[test]
    fn enums_and_nested_fns_are_recorded() {
        let it = items(
            "enum Kind { A, B }\n\
             fn outer() { fn inner() { leaf(); } inner(); }\n",
        );
        assert_eq!(it.enums, vec!["Kind"]);
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
