//! The instrumentation event taxonomy.
//!
//! Every event is a small `Copy` value stamped with the simulated cycle
//! it happened at, so emitting one costs a couple of register moves and
//! never allocates — the engine hot path stays womlint-clean whether or
//! not an observer is attached.

use crate::policy::ArraySide;
use pcm_sim::Cycle;

/// How a completed demand write was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteClass {
    /// RESET-only (fast) array write: within the row's WOM rewrite budget.
    Fast,
    /// Full SET-gated (slow) array write: the α-write past the budget, or
    /// any baseline write.
    Slow,
    /// Absorbed by the row buffer of an already-pending array write — no
    /// array operation at all, only a data burst.
    Coalesced,
}

/// One instrumentation event, reported by the engine and the
/// architecture policies as simulation progresses.
///
/// The taxonomy covers the temporal mechanisms behind the paper's
/// aggregate results: demand traffic with its latency class (Fig. 5),
/// refresh bursts on idle ranks (§3.2), WOM-cache churn and victim
/// writebacks (§4), wear-leveling gap moves, and per-row rewrite-budget
/// exhaustion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A demand read entered the system.
    ReadIssued {
        /// Cycle the read was submitted.
        cycle: Cycle,
        /// Logical address as seen by the controller (pre-policy).
        addr: u64,
    },
    /// A demand write entered the system.
    WriteIssued {
        /// Cycle the write was submitted.
        cycle: Cycle,
        /// Logical address as seen by the controller.
        addr: u64,
    },
    /// A demand read finished.
    ReadCompleted {
        /// Cycle the data was returned.
        cycle: Cycle,
        /// End-to-end latency in cycles (arrival → data).
        latency: Cycle,
    },
    /// A demand write finished (or coalesced into a pending one).
    WriteCompleted {
        /// Cycle the cells were programmed (for coalesced writes, the
        /// cycle the burst was absorbed).
        cycle: Cycle,
        /// End-to-end latency in cycles.
        latency: Cycle,
        /// How the write was serviced.
        class: WriteClass,
    },
    /// A burst of rank refreshes was enqueued on an idle rank.
    RefreshBurst {
        /// Cycle the burst was planned.
        cycle: Cycle,
        /// Which array the burst targets.
        side: ArraySide,
        /// The idle rank being refreshed.
        rank: u32,
        /// Rows in the burst.
        rows: u32,
    },
    /// One row refresh finished (completed or preempted by a demand
    /// write under write pausing).
    RefreshRow {
        /// Cycle the refresh transaction retired.
        cycle: Cycle,
        /// Which array the row lives in.
        side: ArraySide,
        /// Rank of the refreshed row.
        rank: u32,
        /// Bank of the refreshed row.
        bank: u32,
        /// Row index within the bank.
        row: u32,
        /// Whether write pausing aborted the refresh.
        preempted: bool,
    },
    /// A demand read consulted the WOM-cache tags (WCPCM only).
    CacheRead {
        /// Cycle of the tag lookup.
        cycle: Cycle,
        /// Whether the cache owned the line.
        hit: bool,
    },
    /// A demand write was steered through the WOM-cache (WCPCM only).
    CacheWrite {
        /// Cycle of the cache write.
        cycle: Cycle,
        /// Whether the write hit an existing entry (a miss evicts).
        hit: bool,
    },
    /// A WOM-cache victim row finished writing back to main memory.
    VictimWriteback {
        /// Cycle the writeback retired.
        cycle: Cycle,
    },
    /// A Start-Gap wear-leveling gap move: one internal row copy.
    GapMove {
        /// Cycle the copy was issued.
        cycle: Cycle,
        /// Rank of the moving gap.
        rank: u32,
        /// Bank of the moving gap.
        bank: u32,
    },
    /// A row's WOM rewrite budget ran out, making it a refresh candidate.
    BudgetExhausted {
        /// Cycle the exhausting write was classified.
        cycle: Cycle,
        /// Which array the row lives in.
        side: ArraySide,
        /// Rank of the exhausted row.
        rank: u32,
        /// Bank of the exhausted row.
        bank: u32,
        /// Row index within the bank.
        row: u32,
    },
    /// A hidden-page companion access was issued (hidden-page
    /// organization with charged traffic only).
    HiddenPageAccess {
        /// Cycle of the companion access.
        cycle: Cycle,
    },
}

impl Event {
    /// The simulated cycle the event is stamped with.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        match *self {
            Event::ReadIssued { cycle, .. }
            | Event::WriteIssued { cycle, .. }
            | Event::ReadCompleted { cycle, .. }
            | Event::WriteCompleted { cycle, .. }
            | Event::RefreshBurst { cycle, .. }
            | Event::RefreshRow { cycle, .. }
            | Event::CacheRead { cycle, .. }
            | Event::CacheWrite { cycle, .. }
            | Event::VictimWriteback { cycle }
            | Event::GapMove { cycle, .. }
            | Event::BudgetExhausted { cycle, .. }
            | Event::HiddenPageAccess { cycle } => cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accessor_covers_every_variant() {
        let events = [
            Event::ReadIssued { cycle: 1, addr: 0 },
            Event::WriteIssued { cycle: 2, addr: 0 },
            Event::ReadCompleted {
                cycle: 3,
                latency: 22,
            },
            Event::WriteCompleted {
                cycle: 4,
                latency: 120,
                class: WriteClass::Slow,
            },
            Event::RefreshBurst {
                cycle: 5,
                side: ArraySide::Main,
                rank: 0,
                rows: 3,
            },
            Event::RefreshRow {
                cycle: 6,
                side: ArraySide::Main,
                rank: 0,
                bank: 1,
                row: 2,
                preempted: false,
            },
            Event::CacheRead {
                cycle: 7,
                hit: true,
            },
            Event::CacheWrite {
                cycle: 8,
                hit: false,
            },
            Event::VictimWriteback { cycle: 9 },
            Event::GapMove {
                cycle: 10,
                rank: 0,
                bank: 0,
            },
            Event::BudgetExhausted {
                cycle: 11,
                side: ArraySide::Cache,
                rank: 0,
                bank: 0,
                row: 9,
            },
            Event::HiddenPageAccess { cycle: 12 },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.cycle(), i as u64 + 1);
        }
    }
}
