//! `womd` — the multi-tenant WOM-code PCM simulation service.
//!
//! Wraps the session API of [`wom_pcm`] in a long-running service: many
//! named tenants multiplexed over a fixed worker pool, each driving its
//! own deterministic simulation. The [`service`] module is the
//! embeddable core (the throughput benchmarks drive it in-process); the
//! [`wire`] module speaks the newline-JSON control protocol with raw
//! `WOMTRC` record payloads over stdin or TCP (the `womd` binary and
//! `womsim serve`).
//!
//! The determinism contract is the whole point: a tenant's final
//! metrics and epoch series are byte-identical whether its trace
//! arrived in one chunk or interleaved with 99 other tenants, at any
//! worker count — sessions are pinned to one worker by name hash, so a
//! tenant's engine only ever sees its own records in order, and parking
//! or eviction under memory pressure round-trips through `WOMSNAP`
//! checkpoints whose restores are exact.
//!
//! ```
//! use womd::service::{Service, ServiceConfig, SessionEvent};
//! use wom_pcm::session::SessionSpec;
//! use wom_pcm::Architecture;
//! use pcm_trace::synth::benchmarks;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Service::start(ServiceConfig::default())?;
//! let trace = benchmarks::by_name("qsort").unwrap().generate(1, 2_000);
//! service.open("t0", SessionSpec::tiny(Architecture::WomCode), &[])?;
//! service.feed("t0", trace)?;
//! let events = service.finish_wait("t0", Duration::from_secs(30))?;
//! assert!(matches!(
//!     events.last(),
//!     Some(SessionEvent::Finished { records: 2_000, .. })
//! ));
//! # Ok(())
//! # }
//! ```

pub mod json;
pub mod service;
pub mod wire;

pub use service::{Service, ServiceConfig, ServiceError, SessionEvent};
