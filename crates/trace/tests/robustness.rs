//! Robustness: the trace parsers must never panic, whatever bytes they
//! are fed, and must reject garbage with useful errors.
//!
//! Randomized but fully deterministic: each test drives a fixed number of
//! seeded cases through the parser, so failures reproduce exactly.

use pcm_rng::Rng;
use pcm_trace::binary::read_binary;
use pcm_trace::format::{parse_line, TraceReader};

const CASES: u64 = 512;

/// Random byte vector of length `0..max_len`, occasionally biased toward
/// ASCII so the parser also sees near-valid inputs, not only binary junk.
fn fuzz_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range_usize(0, max_len);
    let ascii_only = rng.gen_bool(0.5);
    (0..len)
        .map(|_| {
            if ascii_only {
                // Digits, separators, letters: the alphabet of real lines.
                const POOL: &[u8] = b" \t0123456789abcdefxRW#,.-+";
                POOL[rng.gen_range_usize(0, POOL.len())]
            } else {
                rng.next_u64() as u8
            }
        })
        .collect()
}

/// Arbitrary text lines never panic the line parser.
#[test]
fn parse_line_never_panics() {
    let mut rng = Rng::seed_from_u64(0xED0C);
    for _ in 0..CASES {
        let bytes = fuzz_bytes(&mut rng, 200);
        let line = String::from_utf8_lossy(&bytes).replace(['\n', '\r'], " ");
        let _ = parse_line(&line);
    }
}

/// Arbitrary byte streams never panic the text reader.
#[test]
fn text_reader_never_panics() {
    let mut rng = Rng::seed_from_u64(0x7EA7);
    for _ in 0..CASES {
        let bytes = fuzz_bytes(&mut rng, 512);
        for result in TraceReader::new(bytes.as_slice()) {
            let _ = result;
        }
    }
}

/// Arbitrary byte streams never panic the binary reader.
#[test]
fn binary_reader_never_panics() {
    let mut rng = Rng::seed_from_u64(0xB10B);
    for _ in 0..CASES {
        let bytes = fuzz_bytes(&mut rng, 512);
        let _ = read_binary(bytes.as_slice());
    }
}

/// Every record the text parser accepts round-trips exactly.
#[test]
fn accepted_lines_round_trip() {
    use pcm_trace::{TraceOp, TraceRecord};
    let mut rng = Rng::seed_from_u64(0x2097);
    for _ in 0..CASES {
        let cycle = rng.next_u64();
        let addr = rng.next_u64();
        let op = if rng.gen_bool(0.5) {
            TraceOp::Read
        } else {
            TraceOp::Write
        };
        let r = TraceRecord::new(cycle, addr, op);
        let parsed = parse_line(&r.to_string()).unwrap().unwrap();
        assert_eq!(parsed, r);
    }
}
