//! Demonstrates the hidden-page organization's dynamic-code flexibility
//! (§3.1): the memory controller reserves hidden pages, recruits them as
//! rows are written, and can switch WOM codes at runtime — something the
//! fixed wide-column organization cannot do.
//!
//! Run with `cargo run --example hidden_page_dynamic`.

use womcode_pcm::arch::{HiddenPageTable, WideColumn};
use womcode_pcm::code::{IdentityCode, Inverted, Orientation, Rs23Code, TabularWomCode, WomCode};
use womcode_pcm::sim::MemoryGeometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = MemoryGeometry::paper_16gib();

    // A wide-column array is manufactured for one expansion factor.
    let wide = WideColumn::new(geometry, 1.5)?;
    // A hidden-page reservation offers the same budget dynamically.
    let mut hidden = HiddenPageTable::new(geometry, 1.5)?;

    println!(
        "geometry: {} ranks x {} banks x {} rows of {} B",
        geometry.ranks, geometry.banks_per_rank, geometry.rows_per_bank, geometry.row_bytes
    );
    println!(
        "hidden-page split: {} visible + {} hidden rows per bank ({} GiB visible)",
        hidden.visible_rows(),
        hidden.hidden_rows(),
        hidden.visible_capacity_bytes() >> 30
    );

    // Three candidate codes the controller may want over the device's life.
    let rs = Inverted::new(Rs23Code::new());
    let identity = IdentityCode::new(2)?;
    // A hypothetical high-endurance code: 1 bit in 2 wits (expansion 2.0).
    let wide_code = TabularWomCode::new(
        1,
        2,
        Orientation::SetOnly,
        vec![vec![0b00, 0b01], vec![0b11, 0b10]],
    )?;

    println!(
        "\n{:28}{:>12}{:>14}{:>14}",
        "code", "expansion", "wide-column", "hidden-page"
    );
    for (name, expansion, wc, hp) in [
        (
            "identity (no WOM)",
            identity.expansion(),
            wide.supports(&identity),
            hidden.supports(&identity),
        ),
        (
            "inverted <2^2>^2/3",
            rs.expansion(),
            wide.supports(&rs),
            hidden.supports(&rs),
        ),
        (
            "<2>^2/2 (expansion 2.0)",
            wide_code.expansion(),
            wide.supports(&wide_code),
            hidden.supports(&wide_code),
        ),
    ] {
        println!(
            "{name:28}{expansion:>12.2}{:>14}{:>14}",
            if wc { "supported" } else { "too wide" },
            if hp { "supported" } else { "too wide" }
        );
    }

    // Recruit hidden rows as visible rows get written, then release them
    // (e.g. when the OS reclaims the region or the code is switched).
    println!("\nrecruiting hidden pages for the first 8 written rows of bank 0:");
    for row in 0..8 {
        let h = hidden.recruit(0, row)?;
        println!("  visible row {row:>3} -> hidden row {h}");
    }
    println!("mapped pages: {}", hidden.mapped_count());
    for row in 0..8 {
        hidden.release(0, row);
    }
    println!(
        "after release: {} (pool recycled for the next code)",
        hidden.mapped_count()
    );

    println!(
        "\nwide-column: fixed 1.5x columns, zero controller bookkeeping;\n\
         hidden-page: page table + free lists, but any code with expansion <= 1.5"
    );
    Ok(())
}
