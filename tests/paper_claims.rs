//! Integration tests pinning the paper's headline claims: the relative
//! ordering of the four architectures, the overhead arithmetic, and the
//! analytic bounds. These are the "shape" assertions the reproduction
//! must preserve (see `EXPERIMENTS.md` for measured magnitudes).

use womcode_pcm::arch::{Architecture, RunMetrics, SystemBuilder};
use womcode_pcm::code::analysis::{latency_ratio_bound, wcpcm_overhead};
use womcode_pcm::code::Rs23Code;
use womcode_pcm::trace::synth::{benchmarks, Suite};

/// Representative mini-suite: one workload per suite plus the paper's
/// highlighted best case.
const MINI_SUITE: [&str; 4] = ["464.h264ref", "401.bzip2", "qsort", "water-ns"];
const RECORDS: usize = 15_000;

fn normalized_writes(arch: Architecture, bench: &str) -> (f64, f64) {
    let profile = benchmarks::by_name(bench).expect("paper workload");
    let trace = profile.generate(2014, RECORDS);
    let run = |a: Architecture| -> RunMetrics {
        let mut session = SystemBuilder::new(a).rows_per_bank(4096).open().unwrap();
        session.feed(&trace).unwrap();
        session.finish().unwrap()
    };
    let base = run(Architecture::Baseline);
    let m = run(arch);
    (
        m.normalized_write_latency(&base).expect("writes recorded"),
        m.normalized_read_latency(&base).expect("reads recorded"),
    )
}

/// §5 / Fig. 5(a): every WOM architecture beats conventional PCM on
/// writes, on every benchmark of the mini-suite.
#[test]
fn all_architectures_beat_the_baseline_on_writes() {
    for bench in MINI_SUITE {
        for arch in [
            Architecture::WomCode,
            Architecture::WomCodeRefresh,
            Architecture::Wcpcm,
        ] {
            let (w, _) = normalized_writes(arch, bench);
            assert!(
                w < 1.0,
                "{arch} on {bench}: normalized write latency {w:.3}"
            );
        }
    }
}

/// §3.2: PCM-refresh strictly improves on plain WOM-code PCM (suite
/// average), because it hides α-writes in idle cycles.
#[test]
fn refresh_improves_on_plain_wom_code() {
    let mut wom_sum = 0.0;
    let mut refresh_sum = 0.0;
    for bench in MINI_SUITE {
        wom_sum += normalized_writes(Architecture::WomCode, bench).0;
        refresh_sum += normalized_writes(Architecture::WomCodeRefresh, bench).0;
    }
    assert!(
        refresh_sum < wom_sum,
        "refresh ({:.3}) must beat plain WOM-code ({:.3}) on average",
        refresh_sum / MINI_SUITE.len() as f64,
        wom_sum / MINI_SUITE.len() as f64
    );
}

/// Fig. 5(b): read latency also improves (writes stop blocking reads).
#[test]
fn read_latency_improves_with_faster_writes() {
    let mut base_sum = 0.0;
    for bench in MINI_SUITE {
        base_sum += normalized_writes(Architecture::WomCodeRefresh, bench).1;
    }
    assert!(
        base_sum / MINI_SUITE.len() as f64 <= 0.95,
        "refresh must reduce read latency on average, got {:.3}",
        base_sum / MINI_SUITE.len() as f64
    );
}

/// §4: WCPCM approaches PCM-refresh's write improvement at a fraction of
/// the memory overhead.
#[test]
fn wcpcm_is_competitive_at_low_overhead() {
    let mut wcpcm_sum = 0.0;
    let mut wom_sum = 0.0;
    for bench in MINI_SUITE {
        wcpcm_sum += normalized_writes(Architecture::Wcpcm, bench).0;
        wom_sum += normalized_writes(Architecture::WomCode, bench).0;
    }
    assert!(
        wcpcm_sum < wom_sum,
        "wcpcm ({wcpcm_sum:.3}) must beat whole-array WOM coding ({wom_sum:.3}) on average"
    );
    // And at ~10x less overhead: 4.7% vs 50%.
    let wcpcm_cells = Architecture::Wcpcm.cell_overhead(1.5, 32);
    let wom_cells = Architecture::WomCode.cell_overhead(1.5, 32);
    assert!(wcpcm_cells * 10.0 < wom_cells);
    assert!((wcpcm_overhead(&Rs23Code::new(), 32) - wcpcm_cells).abs() < 1e-12);
}

/// MiBench (idle-rich) must benefit more from PCM-refresh than SPLASH-2
/// (idle-poor) — the paper's §1 motivation for why write scheduling in
/// idle cycles fails on HPC codes.
#[test]
fn refresh_gains_track_idleness() {
    let mibench = benchmarks::by_suite(Suite::MiBench)[0].name.clone();
    let splash = benchmarks::by_suite(Suite::Splash2)[0].name.clone();
    let (mi, _) = normalized_writes(Architecture::WomCodeRefresh, &mibench);
    let (sp, _) = normalized_writes(Architecture::WomCodeRefresh, &splash);
    assert!(
        mi < sp,
        "MiBench ({mibench}: {mi:.3}) must gain more from refresh than SPLASH-2 ({splash}: {sp:.3})"
    );
}

/// §3.2's analytic bound holds empirically: plain WOM-code PCM can never
/// beat (k-1+S)/(kS) of the baseline's *service* time; queueing effects
/// may add a little slack, so assert with a small margin.
#[test]
fn analytic_bound_is_respected() {
    let s = 150.0 / 40.0;
    let bound = latency_ratio_bound(2, s);
    for bench in MINI_SUITE {
        let (w, _) = normalized_writes(Architecture::WomCode, bench);
        assert!(
            w > bound - 0.12,
            "{bench}: WOM-code normalized write {w:.3} implausibly below the k=2 bound {bound:.3}"
        );
    }
}

/// Table 1 is reproduced exactly by the library's code tables.
#[test]
fn table1_is_exact() {
    use womcode_pcm::code::rs23::{FIRST_WRITE, SECOND_WRITE};
    assert_eq!(FIRST_WRITE, [0b000, 0b100, 0b010, 0b001]);
    assert_eq!(SECOND_WRITE, [0b111, 0b011, 0b101, 0b110]);
}
