//! `panic/ratchet`: the per-crate panic-capable-site inventory may only
//! shrink relative to `womlint-baseline.toml`.

use crate::config::{Baseline, Config};
use crate::{Diagnostic, Report, RULE_PANIC_RATCHET};

/// Compares the measured inventory in `report` against `baseline`.
pub fn check(cfg: &Config, baseline: &Baseline, report: &mut Report) {
    let inventory = report.inventory.clone();
    for (krate, current) in &inventory {
        let Some(base) = baseline.get(krate) else {
            report.violations.push(Diagnostic {
                rule: RULE_PANIC_RATCHET.into(),
                file: cfg.baseline_file.clone(),
                line: 1,
                message: format!(
                    "crate `{krate}` is missing from the panic baseline — run \
                     `cargo run -p womlint -- --update-baseline`"
                ),
            });
            continue;
        };
        for ((cat, cur), (_, base)) in current.categories().iter().zip(base.categories().iter()) {
            if cur > base {
                report.violations.push(Diagnostic {
                    rule: RULE_PANIC_RATCHET.into(),
                    file: cfg.baseline_file.clone(),
                    line: 1,
                    message: format!(
                        "crate `{krate}`: {cur} `{cat}` site(s) in library code, \
                         baseline allows {base} — the panic surface may only \
                         shrink; convert new sites to typed errors"
                    ),
                });
            }
        }
    }
}
