//! Throughput benches: how fast the substrate itself runs — trace
//! generation rate and end-to-end simulation rate per architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcm_trace::synth::benchmarks;
use wom_pcm::{Architecture, SystemConfig, WomPcmSystem};

const RECORDS: usize = 10_000;

fn trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(RECORDS as u64));
    for name in ["qsort", "410.bwaves"] {
        let profile = benchmarks::by_name(name).expect("paper workload");
        group.bench_with_input(BenchmarkId::from_parameter(name), &profile, |b, p| {
            b.iter(|| p.generate(7, RECORDS))
        });
    }
    group.finish();
}

fn simulation_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_rate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS as u64));
    let trace = benchmarks::by_name("mad")
        .expect("paper workload")
        .generate(7, RECORDS);
    for arch in Architecture::all_paper() {
        group.bench_with_input(
            BenchmarkId::from_parameter(arch.label()),
            &arch,
            |b, &arch| {
                b.iter(|| {
                    let mut cfg = SystemConfig::paper(arch);
                    cfg.mem.geometry.rows_per_bank = 4096;
                    let mut sys = WomPcmSystem::new(cfg).expect("valid config");
                    sys.run_trace(trace.clone()).expect("trace runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, trace_generation, simulation_rate);
criterion_main!(benches);
