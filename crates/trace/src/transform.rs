//! Trace transformations: time dilation, address offsetting, and
//! multi-program interleaving.
//!
//! The paper captures single-program traces on a Core i7; consolidated
//! (multi-core) load on one memory channel is the sum of several such
//! streams. [`interleave`] merges traces in arrival order, [`dilate`]
//! stretches or compresses a trace's timing (intensity scaling), and
//! [`offset_addresses`] relocates a trace's footprint so merged programs
//! do not falsely share memory.

use crate::record::TraceRecord;

/// Scales every record's arrival cycle by `factor` (rounded), preserving
/// order. `factor > 1` slows the trace down (more idle cycles, more
/// PCM-refresh opportunity); `factor < 1` intensifies it.
///
/// # Panics
///
/// Panics if `factor` is not finite and positive.
///
/// ```
/// use pcm_trace::transform::dilate;
/// use pcm_trace::{TraceOp, TraceRecord};
///
/// let t = vec![TraceRecord::new(10, 0, TraceOp::Read)];
/// assert_eq!(dilate(&t, 2.0)[0].cycle, 20);
/// ```
#[must_use]
pub fn dilate(records: &[TraceRecord], factor: f64) -> Vec<TraceRecord> {
    assert!(
        factor.is_finite() && factor > 0.0,
        "dilation factor must be finite and positive"
    );
    records
        .iter()
        .map(|r| TraceRecord {
            cycle: (r.cycle as f64 * factor).round() as u64,
            ..*r
        })
        .collect()
}

/// Adds `offset` bytes to every address (wrapping), relocating the
/// trace's footprint.
#[must_use]
pub fn offset_addresses(records: &[TraceRecord], offset: u64) -> Vec<TraceRecord> {
    records
        .iter()
        .map(|r| TraceRecord {
            addr: r.addr.wrapping_add(offset),
            ..*r
        })
        .collect()
}

/// Merges any number of traces into one stream ordered by arrival cycle
/// (stable: ties keep input order, earlier traces first) — the memory
/// controller's view of a consolidated multi-program workload.
///
/// Callers should [`offset_addresses`] each program first so footprints
/// do not alias.
///
/// ```
/// use pcm_trace::transform::interleave;
/// use pcm_trace::{TraceOp, TraceRecord};
///
/// let a = vec![TraceRecord::new(0, 0, TraceOp::Read), TraceRecord::new(9, 0, TraceOp::Read)];
/// let b = vec![TraceRecord::new(4, 64, TraceOp::Write)];
/// let merged = interleave(&[a, b]);
/// let cycles: Vec<u64> = merged.iter().map(|r| r.cycle).collect();
/// assert_eq!(cycles, vec![0, 4, 9]);
/// ```
#[must_use]
pub fn interleave(traces: &[Vec<TraceRecord>]) -> Vec<TraceRecord> {
    let mut merged: Vec<(usize, TraceRecord)> = traces
        .iter()
        .enumerate()
        .flat_map(|(i, t)| t.iter().map(move |&r| (i, r)))
        .collect();
    merged.sort_by_key(|&(i, r)| (r.cycle, i));
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceOp;
    use crate::synth::benchmarks;

    fn rec(cycle: u64, addr: u64) -> TraceRecord {
        TraceRecord::new(cycle, addr, TraceOp::Write)
    }

    #[test]
    fn dilate_scales_and_preserves_order() {
        let t = vec![rec(0, 0), rec(10, 64), rec(15, 128)];
        let slow = dilate(&t, 3.0);
        assert_eq!(
            slow.iter().map(|r| r.cycle).collect::<Vec<_>>(),
            vec![0, 30, 45]
        );
        let fast = dilate(&t, 0.5);
        assert_eq!(
            fast.iter().map(|r| r.cycle).collect::<Vec<_>>(),
            vec![0, 5, 8]
        );
        for w in fast.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "dilation must preserve order");
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_dilation_panics() {
        let _ = dilate(&[], 0.0);
    }

    #[test]
    fn offset_relocates_addresses() {
        let t = vec![rec(0, 0x100)];
        assert_eq!(offset_addresses(&t, 0x1000)[0].addr, 0x1100);
    }

    #[test]
    fn interleave_is_sorted_and_complete() {
        let a = benchmarks::by_name("qsort").unwrap().generate(1, 500);
        let b = offset_addresses(
            &benchmarks::by_name("mad").unwrap().generate(2, 700),
            1 << 30,
        );
        let merged = interleave(&[a.clone(), b.clone()]);
        assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn interleave_is_stable_on_ties() {
        let a = vec![rec(5, 1)];
        let b = vec![rec(5, 2)];
        let merged = interleave(&[a, b]);
        assert_eq!(merged[0].addr, 1, "earlier input wins ties");
        assert_eq!(merged[1].addr, 2);
    }

    #[test]
    fn merged_traces_drive_the_simulator() {
        // The combined stream must still satisfy the system's monotonic-
        // cycle requirement.
        let a = benchmarks::by_name("water-ns").unwrap().generate(3, 300);
        let b = offset_addresses(
            &benchmarks::by_name("stringsearch")
                .unwrap()
                .generate(4, 300),
            1 << 31,
        );
        let merged = interleave(&[a, b]);
        let mut last = 0;
        for r in &merged {
            assert!(r.cycle >= last);
            last = r.cycle;
        }
    }
}
