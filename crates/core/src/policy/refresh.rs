//! PCM-refresh (§3.2): WOM-code PCM plus a periodic engine that
//! re-initializes exhausted rows in idle ranks.

use super::wom_code::WomCodePolicy;
use super::{ArchPolicy, ArraySide, ReadAction, WriteAction};
use crate::config::SystemConfig;
use crate::engine::EngineCore;
use crate::error::WomPcmError;
use crate::metrics::RunMetrics;
use crate::refresh::{RefreshConfig, RefreshEngine};
use pcm_sim::{Completion, DecodedAddr, SnapError, SnapReader, SnapWriter, TransactionId};
use std::collections::BTreeMap;

/// The main-array refresh machinery shared by the refresh-capable
/// policies: the [`RefreshEngine`] (row address tables, round-robin
/// idle-rank selection) plus the bookkeeping mapping in-flight refresh
/// transactions back to their `(rank, bank, row)`.
#[derive(Debug)]
pub(super) struct RefreshDriver {
    engine: RefreshEngine,
    // Ordered map (determinism invariant; see `EngineCore`).
    planned: BTreeMap<TransactionId, (u32, u32, u32)>,
    // Tick-time scratch, reused so the no-plan steady state of every
    // tick is allocation-free.
    idle_scratch: Vec<u32>,
    rows_scratch: Vec<(u32, u32)>,
}

impl RefreshDriver {
    pub(super) fn new(config: RefreshConfig, ranks: u32, banks: u32) -> Result<Self, WomPcmError> {
        Ok(Self {
            engine: RefreshEngine::new(config, ranks, banks)?,
            planned: BTreeMap::new(),
            idle_scratch: Vec::new(),
            rows_scratch: Vec::new(),
        })
    }

    pub(super) fn record_exhausted(&mut self, rank: u32, bank: u32, row: u32) {
        self.engine.record_exhausted(rank, bank, row);
    }

    pub(super) fn row_refreshed(&mut self, rank: u32, bank: u32, row: u32) {
        self.engine.row_refreshed(rank, bank, row);
    }

    pub(super) fn row_preempted(&mut self, rank: u32, bank: u32, row: u32) {
        self.engine.row_preempted(rank, bank, row);
    }

    /// Removes and returns the planned target of a finished refresh.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Internal`] when `id` was never planned —
    /// a refresh-scheduling bug.
    pub(super) fn take_planned(
        &mut self,
        id: TransactionId,
    ) -> Result<(u32, u32, u32), WomPcmError> {
        self.planned.remove(&id).ok_or_else(|| {
            // womlint::allow(hotpath/transitive, reason = "internal-error path: an unplanned completion is a policy bug and aborts the run")
            WomPcmError::Internal(format!("refresh completion {id:?} was never planned"))
        })
    }

    /// Handles a finished main-array refresh transaction end to end:
    /// resolves the planned `(rank, bank, row)`, accounts it, and — for
    /// a completed (not preempted) refresh — re-initializes the row's
    /// data in the functional checker via the batched
    /// [`EngineCore::check_refresh_row`] rewrite. Returns the refreshed
    /// target, or `None` when the refresh was preempted.
    ///
    /// # Errors
    ///
    /// Propagates scheduling bugs ([`WomPcmError::Internal`]) and
    /// functional-rewrite failures.
    pub(super) fn on_refresh_completion(
        &mut self,
        core: &mut EngineCore,
        c: &Completion,
    ) -> Result<Option<(u32, u32, u32)>, WomPcmError> {
        let (rank, bank, row) = self.take_planned(c.id)?;
        core.note_refresh_row(ArraySide::Main, rank, bank, row, c);
        if c.preempted {
            self.row_preempted(rank, bank, row);
            return Ok(None);
        }
        self.row_refreshed(rank, bank, row);
        core.check_refresh_row(rank, bank, row)?;
        Ok(Some((rank, bank, row)))
    }

    /// One staggered refresh opportunity on the main arrays.
    ///
    /// A rank qualifies when no demand access for it is queued; banks
    /// still finishing in-flight work are simply skipped from the batch.
    /// Write pausing lets any later demand access preempt the refresh, so
    /// this is safe for demand latency.
    pub(super) fn tick(&mut self, core: &mut EngineCore) -> Result<(), WomPcmError> {
        if !self.engine.has_work() {
            return Ok(());
        }
        let ranks = core.config().mem.geometry.ranks;
        self.idle_scratch.clear();
        self.idle_scratch
            .extend((0..ranks).filter(|&r| core.main_rank_idle(r)));
        if let Some(rank) = self
            .engine
            .plan_into(&self.idle_scratch, &mut self.rows_scratch)
        {
            self.rows_scratch
                .retain(|&(bank, _)| core.main_bank_free(rank, bank));
            if self.rows_scratch.is_empty() {
                return Ok(());
            }
            let first = core.enqueue_main_rank_refresh(rank, &self.rows_scratch)?;
            for (k, &(bank, row)) in self.rows_scratch.iter().enumerate() {
                self.planned.insert(first + k as u64, (rank, bank, row));
            }
        }
        Ok(())
    }

    /// Serializes the refresh engine and the in-flight refresh plan. The
    /// tick-time scratch vectors are transient and not written.
    pub(super) fn save_state(&self, w: &mut SnapWriter) {
        self.engine.save_state(w);
        w.put_usize(self.planned.len());
        for (&id, &(rank, bank, row)) in &self.planned {
            w.put_u64(id);
            w.put_u32(rank);
            w.put_u32(bank);
            w.put_u32(row);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation and structural corruption.
    pub(super) fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.engine = RefreshEngine::load_state(r)?;
        let planned = r.take_len(20)?;
        self.planned = BTreeMap::new();
        for _ in 0..planned {
            let id = r.take_u64()?;
            let rank = r.take_u32()?;
            let bank = r.take_u32()?;
            let row = r.take_u32()?;
            self.planned.insert(id, (rank, bank, row));
        }
        self.idle_scratch.clear();
        self.rows_scratch.clear();
        Ok(())
    }
}

/// WOM-code PCM with PCM-refresh: the [`WomCodePolicy`] write path plus a
/// refresh engine restoring rewrite budgets during idle periods.
#[derive(Debug)]
pub struct WomCodeRefreshPolicy {
    inner: WomCodePolicy,
}

impl WomCodeRefreshPolicy {
    /// Builds the refresh-enabled WOM-code policy.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] for inconsistent parameters.
    pub fn new(config: &SystemConfig) -> Result<Self, WomPcmError> {
        let g = config.mem.geometry;
        let driver = RefreshDriver::new(config.refresh, g.ranks, g.banks_per_rank)?;
        Ok(Self {
            inner: WomCodePolicy::with_driver(config, Some(driver))?,
        })
    }
}

impl ArchPolicy for WomCodeRefreshPolicy {
    fn wants_ticks(&self) -> bool {
        true
    }

    fn on_read(&mut self, core: &mut EngineCore, addr: u64) -> Result<ReadAction, WomPcmError> {
        self.inner.on_read(core, addr)
    }

    fn on_write(&mut self, core: &mut EngineCore, addr: u64) -> Result<WriteAction, WomPcmError> {
        self.inner.on_write(core, addr)
    }

    fn on_tick(&mut self, core: &mut EngineCore) -> Result<(), WomPcmError> {
        self.inner.tick(core)
    }

    fn on_completion(
        &mut self,
        core: &mut EngineCore,
        side: ArraySide,
        c: &Completion,
    ) -> Result<(), WomPcmError> {
        self.inner.on_completion(core, side, c)
    }

    fn on_wear_level_copy(&mut self, core: &mut EngineCore, dest: DecodedAddr) {
        self.inner.on_wear_level_copy(core, dest);
    }

    fn finish(&mut self, core: &EngineCore, result: &mut RunMetrics) {
        self.inner.finish(core, result);
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), WomPcmError> {
        self.inner.load_state(r)
    }
}
