//! The paper's 20 evaluation workloads as synthetic profiles (§5).
//!
//! Knob values are calibrated from the suites' published memory
//! characterizations, not from the (unavailable) original Pin captures:
//!
//! * **SPEC CPU2006** — moderate-to-large footprints, mixed intensity.
//!   `464.h264ref` gets the strongest row-rewrite recurrence (motion-
//!   compensated frame buffers are rewritten in place), matching its
//!   best-in-class improvement in the paper's Fig. 5.
//! * **MiBench** — small embedded footprints and *low* memory intensity
//!   (large idle gaps), which is what makes PCM-refresh so effective there.
//! * **SPLASH-2** — high-performance kernels with high intensity and
//!   little idleness ("little-to-no idle cycles between memory accesses",
//!   §1), the adversarial case for idle-cycle techniques.
//!
//! Inter-burst gaps are chosen so the DDR data bus runs at roughly 70%
//! utilization for SPLASH-2, 40–55% for SPEC, and ~10% for MiBench — below
//! saturation (so bank conflicts, not raw bandwidth, dominate) but busy
//! enough that long SET-gated writes visibly block the read stream.
//!
//! Working sets are scaled down ~8x from the applications' true footprints
//! so that a bench-scale trace sample (10^5 records) covers its working
//! set about as many times as the paper's full captures covered theirs;
//! without this, large-footprint workloads degenerate to pure cold-miss
//! streams in which no rewrite-dependent mechanism can act.

use super::{Suite, WorkloadProfile};

macro_rules! profile {
    ($name:literal, $suite:expr, rf: $rf:expr, wss_mb: $wss:expr, hot: $hot:expr,
     hot_set: $hs:expr, seq: $seq:expr, rewrite: $rw:expr, reuse: $ru:expr,
     gap: $gap:expr, burst: $burst:expr, window: $win:expr) => {
        WorkloadProfile {
            name: $name.to_string(),
            suite: $suite,
            read_fraction: $rf,
            working_set_bytes: ($wss as u64) << 20,
            hot_fraction: $hot,
            hot_set_fraction: $hs,
            sequential_run: $seq,
            row_rewrite_prob: $rw,
            read_reuse_prob: $ru,
            mean_gap_cycles: $gap,
            burst_len: $burst,
            reuse_window: $win,
            scatter_pages: false,
        }
    };
}

/// All 20 workload profiles, in the paper's order (Fig. 5 x-axis).
#[must_use]
pub fn all() -> Vec<WorkloadProfile> {
    use Suite::{MiBench, SpecCpu2006, Splash2};
    vec![
        // SPEC CPU2006 integer
        profile!("400.perlbench", SpecCpu2006, rf: 0.70, wss_mb: 8, hot: 0.70, hot_set: 0.08,
                 seq: 0.35, rewrite: 0.55, reuse: 0.35, gap: 30.0, burst: 4, window: 256),
        profile!("401.bzip2", SpecCpu2006, rf: 0.65, wss_mb: 16, hot: 0.65, hot_set: 0.10,
                 seq: 0.55, rewrite: 0.50, reuse: 0.30, gap: 38.0, burst: 6, window: 320),
        profile!("456.hmmer", SpecCpu2006, rf: 0.75, wss_mb: 4, hot: 0.75, hot_set: 0.06,
                 seq: 0.45, rewrite: 0.45, reuse: 0.30, gap: 30.0, burst: 4, window: 192),
        profile!("462.libq", SpecCpu2006, rf: 0.72, wss_mb: 8, hot: 0.60, hot_set: 0.12,
                 seq: 0.70, rewrite: 0.40, reuse: 0.25, gap: 40.0, burst: 8, window: 256),
        profile!("464.h264ref", SpecCpu2006, rf: 0.55, wss_mb: 8, hot: 0.80, hot_set: 0.05,
                 seq: 0.40, rewrite: 0.80, reuse: 0.50, gap: 32.0, burst: 4, window: 224),
        // SPEC CPU2006 floating point
        profile!("410.bwaves", SpecCpu2006, rf: 0.70, wss_mb: 32, hot: 0.55, hot_set: 0.15,
                 seq: 0.80, rewrite: 0.35, reuse: 0.15, gap: 48.0, burst: 8, window: 384),
        profile!("436.cactusADM", SpecCpu2006, rf: 0.60, wss_mb: 24, hot: 0.60, hot_set: 0.12,
                 seq: 0.60, rewrite: 0.50, reuse: 0.30, gap: 36.0, burst: 6, window: 320),
        profile!("465.tonto", SpecCpu2006, rf: 0.72, wss_mb: 6, hot: 0.70, hot_set: 0.08,
                 seq: 0.50, rewrite: 0.45, reuse: 0.30, gap: 32.0, burst: 4, window: 192),
        profile!("470.lbm", SpecCpu2006, rf: 0.50, wss_mb: 32, hot: 0.50, hot_set: 0.20,
                 seq: 0.85, rewrite: 0.45, reuse: 0.20, gap: 42.0, burst: 8, window: 384),
        profile!("482.sphinx3", SpecCpu2006, rf: 0.78, wss_mb: 12, hot: 0.70, hot_set: 0.08,
                 seq: 0.55, rewrite: 0.35, reuse: 0.25, gap: 35.0, burst: 5, window: 256),
        // MiBench (embedded: low intensity, small footprints)
        profile!("qsort", MiBench, rf: 0.60, wss_mb: 1, hot: 0.75, hot_set: 0.10,
                 seq: 0.50, rewrite: 0.65, reuse: 0.40, gap: 115.0, burst: 3, window: 128),
        profile!("mad", MiBench, rf: 0.68, wss_mb: 1, hot: 0.70, hot_set: 0.10,
                 seq: 0.65, rewrite: 0.55, reuse: 0.35, gap: 130.0, burst: 4, window: 160),
        profile!("FFT.mi", MiBench, rf: 0.62, wss_mb: 1, hot: 0.70, hot_set: 0.12,
                 seq: 0.60, rewrite: 0.60, reuse: 0.40, gap: 120.0, burst: 4, window: 160),
        profile!("typeset", MiBench, rf: 0.70, wss_mb: 2, hot: 0.65, hot_set: 0.10,
                 seq: 0.45, rewrite: 0.50, reuse: 0.30, gap: 140.0, burst: 3, window: 192),
        profile!("stringsearch", MiBench, rf: 0.80, wss_mb: 1, hot: 0.80, hot_set: 0.08,
                 seq: 0.70, rewrite: 0.45, reuse: 0.30, gap: 150.0, burst: 3, window: 96),
        // SPLASH-2 (HPC: high intensity, little idleness)
        profile!("ocean", Splash2, rf: 0.62, wss_mb: 16, hot: 0.60, hot_set: 0.15,
                 seq: 0.65, rewrite: 0.50, reuse: 0.35, gap: 26.0, burst: 8, window: 320),
        profile!("water-ns", Splash2, rf: 0.68, wss_mb: 8, hot: 0.65, hot_set: 0.12,
                 seq: 0.55, rewrite: 0.55, reuse: 0.40, gap: 28.0, burst: 8, window: 256),
        profile!("water-sp", Splash2, rf: 0.68, wss_mb: 8, hot: 0.65, hot_set: 0.12,
                 seq: 0.58, rewrite: 0.55, reuse: 0.40, gap: 28.0, burst: 8, window: 256),
        profile!("raytrace", Splash2, rf: 0.80, wss_mb: 12, hot: 0.55, hot_set: 0.15,
                 seq: 0.35, rewrite: 0.40, reuse: 0.20, gap: 20.0, burst: 6, window: 320),
        profile!("LU-ncb", Splash2, rf: 0.60, wss_mb: 16, hot: 0.60, hot_set: 0.15,
                 seq: 0.70, rewrite: 0.60, reuse: 0.40, gap: 25.0, burst: 8, window: 288),
    ]
}

/// Looks a profile up by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    all()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

/// The profiles of one suite, in paper order.
#[must_use]
pub fn by_suite(suite: Suite) -> Vec<WorkloadProfile> {
    all().into_iter().filter(|p| p.suite == suite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_the_papers_twenty_workloads() {
        let a = all();
        assert_eq!(a.len(), 20);
        assert_eq!(by_suite(Suite::SpecCpu2006).len(), 10);
        assert_eq!(by_suite(Suite::MiBench).len(), 5);
        assert_eq!(by_suite(Suite::Splash2).len(), 5);
    }

    #[test]
    fn all_profiles_validate() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let a = all();
        let names: std::collections::BTreeSet<_> = a.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names.len(), a.len());
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("464.H264REF").is_some());
        assert!(by_name("qsort").is_some());
        assert!(by_name("no-such-benchmark").is_none());
    }

    #[test]
    fn mibench_is_least_intense() {
        // The embedded suite must have the largest idle gaps: that is the
        // property the paper's PCM-refresh exploits.
        let min_mibench_gap = by_suite(Suite::MiBench)
            .iter()
            .map(|p| p.mean_gap_cycles)
            .fold(f64::INFINITY, f64::min);
        let max_other_gap = all()
            .iter()
            .filter(|p| p.suite != Suite::MiBench)
            .map(|p| p.mean_gap_cycles)
            .fold(0.0, f64::max);
        assert!(min_mibench_gap > max_other_gap);
    }

    #[test]
    fn splash2_is_most_intense() {
        let max_splash_gap = by_suite(Suite::Splash2)
            .iter()
            .map(|p| p.mean_gap_cycles)
            .fold(0.0, f64::max);
        let min_other_gap = all()
            .iter()
            .filter(|p| p.suite != Suite::Splash2)
            .map(|p| p.mean_gap_cycles)
            .fold(f64::INFINITY, f64::min);
        assert!(max_splash_gap <= min_other_gap);
    }

    #[test]
    fn h264ref_has_strongest_rewrite_recurrence() {
        let h264 = by_name("464.h264ref").unwrap();
        for p in all() {
            assert!(p.row_rewrite_prob <= h264.row_rewrite_prob, "{}", p.name);
        }
    }

    #[test]
    fn read_reuse_never_exceeds_write_recurrence() {
        // Read-after-write locality is a subset of general row recurrence;
        // keeping reuse below rewrite keeps the generator's knobs coherent.
        for p in all() {
            assert!(p.read_reuse_prob <= p.row_rewrite_prob, "{}", p.name);
        }
    }
}
