//! Row-level wear tracking — the paper's stated future work.
//!
//! §6: "the proposed WOM-code PCM architectures focus on reducing PCM
//! write latency; their impact on the endurance of PCM is not explicitly
//! addressed in this paper, and the problem remains open for future
//! research." This module closes that gap at the simulator level: every
//! array write (full, RESET-only, or refresh) is charged to its row, and
//! the tracker reports the wear distribution — maximum, mean, and the
//! coefficient of variation that wear-leveling work cares about.

use crate::snap::{SnapError, SnapReader, SnapWriter};
use std::collections::BTreeMap;

/// Per-row write-pulse counters, kept lazily for touched rows.
///
/// ```
/// use pcm_sim::WearTracker;
///
/// let mut wear = WearTracker::new();
/// wear.record_full_write(3);
/// wear.record_reset_write(3);
/// wear.record_reset_write(9);
/// let s = wear.summary();
/// assert_eq!((s.rows, s.writes, s.max), (2, 3, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    // Ordered maps, not hash maps: summaries reduce these counters with
    // floating-point sums, and f64 rounding depends on iteration order.
    // Deterministic order keeps run metrics bit-identical across runs.
    /// Full (SET-bearing) writes per flat row id.
    full: BTreeMap<u64, u64>,
    /// RESET-only writes per flat row id.
    reset_only: BTreeMap<u64, u64>,
}

/// Summary of a wear distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearSummary {
    /// Rows with at least one write.
    pub rows: u64,
    /// Total array writes.
    pub writes: u64,
    /// Writes to the most-written row.
    pub max: u64,
    /// Mean writes per touched row.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean) of writes per touched
    /// row: 0 = perfectly level wear.
    pub cv: f64,
}

impl WearTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a full (SET-bearing) write to `row`.
    pub fn record_full_write(&mut self, row: u64) {
        *self.full.entry(row).or_insert(0) += 1;
    }

    /// Records a RESET-only write to `row`.
    pub fn record_reset_write(&mut self, row: u64) {
        *self.reset_only.entry(row).or_insert(0) += 1;
    }

    /// Full writes recorded for `row`.
    #[must_use]
    pub fn full_writes(&self, row: u64) -> u64 {
        self.full.get(&row).copied().unwrap_or(0)
    }

    /// RESET-only writes recorded for `row`.
    #[must_use]
    pub fn reset_writes(&self, row: u64) -> u64 {
        self.reset_only.get(&row).copied().unwrap_or(0)
    }

    /// Summarizes total writes (both kinds) per row.
    #[must_use]
    pub fn summary(&self) -> WearSummary {
        let mut totals: BTreeMap<u64, u64> = self.full.clone();
        for (&row, &n) in &self.reset_only {
            *totals.entry(row).or_insert(0) += n;
        }
        summarize(totals.values().copied())
    }

    /// Summarizes only the SET-bearing writes — the pulses most relevant
    /// to melt-cycle endurance.
    #[must_use]
    pub fn full_write_summary(&self) -> WearSummary {
        summarize(self.full.values().copied())
    }

    /// Serializes the tracker for snapshot/restore (both counter maps in
    /// key order, so identical states produce identical bytes).
    pub fn save_state(&self, w: &mut SnapWriter) {
        save_counts(&self.full, w);
        save_counts(&self.reset_only, w);
    }

    /// Decodes a tracker written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation and corrupt lengths.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            full: load_counts(r)?,
            reset_only: load_counts(r)?,
        })
    }
}

fn save_counts(map: &BTreeMap<u64, u64>, w: &mut SnapWriter) {
    w.put_usize(map.len());
    for (&row, &n) in map {
        w.put_u64(row);
        w.put_u64(n);
    }
}

fn load_counts(r: &mut SnapReader<'_>) -> Result<BTreeMap<u64, u64>, SnapError> {
    let len = r.take_len(16)?;
    let mut map = BTreeMap::new();
    for _ in 0..len {
        let row = r.take_u64()?;
        let n = r.take_u64()?;
        map.insert(row, n);
    }
    Ok(map)
}

impl WearSummary {
    /// Merges the summary of a *disjoint* row population into this one.
    ///
    /// The pooled mean, max, and coefficient of variation are exact for
    /// populations with no rows in common (shards partition the row
    /// space, so this always holds for shard merges): each side's
    /// second moment is recovered as `var + mean²` with
    /// `var = (cv·mean)²`, weighted by its row count, and the combined
    /// cv is recomputed from the pooled moments.
    pub fn merge_disjoint(&mut self, other: &Self) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            *self = *other;
            return;
        }
        let second_moment_sum = |s: &Self| {
            let var = (s.cv * s.mean) * (s.cv * s.mean);
            (var + s.mean * s.mean) * s.rows as f64
        };
        let rows = self.rows + other.rows;
        let writes = self.writes + other.writes;
        let e2 = (second_moment_sum(self) + second_moment_sum(other)) / rows as f64;
        let mean = writes as f64 / rows as f64;
        let var = (e2 - mean * mean).max(0.0);
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        *self = Self {
            rows,
            writes,
            max: self.max.max(other.max),
            mean,
            cv,
        };
    }

    /// Serializes the summary for snapshot/restore (exact `f64` bits).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.rows);
        w.put_u64(self.writes);
        w.put_u64(self.max);
        w.put_f64(self.mean);
        w.put_f64(self.cv);
    }

    /// Decodes a summary written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            rows: r.take_u64()?,
            writes: r.take_u64()?,
            max: r.take_u64()?,
            mean: r.take_f64()?,
            cv: r.take_f64()?,
        })
    }
}

fn summarize<I: IntoIterator<Item = u64>>(counts: I) -> WearSummary {
    let counts: Vec<u64> = counts.into_iter().collect();
    if counts.is_empty() {
        return WearSummary::default();
    }
    let rows = counts.len() as u64;
    let writes: u64 = counts.iter().sum();
    let max = counts.iter().copied().max().unwrap_or(0);
    let mean = writes as f64 / rows as f64;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / rows as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    WearSummary {
        rows,
        writes,
        max,
        mean,
        cv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_all_zero() {
        let t = WearTracker::new();
        assert_eq!(t.summary(), WearSummary::default());
        assert_eq!(t.full_writes(0), 0);
    }

    #[test]
    fn counts_accumulate_per_row() {
        let mut t = WearTracker::new();
        t.record_full_write(1);
        t.record_full_write(1);
        t.record_reset_write(1);
        t.record_reset_write(2);
        assert_eq!(t.full_writes(1), 2);
        assert_eq!(t.reset_writes(1), 1);
        let s = t.summary();
        assert_eq!(s.rows, 2);
        assert_eq!(s.writes, 4);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cv_detects_skew() {
        let mut level = WearTracker::new();
        let mut skewed = WearTracker::new();
        for row in 0..10 {
            for _ in 0..5 {
                level.record_full_write(row);
            }
        }
        for _ in 0..41 {
            skewed.record_full_write(0);
        }
        for row in 1..10 {
            skewed.record_full_write(row);
        }
        assert!(level.summary().cv < 1e-12, "uniform wear has zero cv");
        assert!(skewed.summary().cv > 1.0, "hot-row wear must show high cv");
    }

    #[test]
    fn merge_disjoint_matches_the_combined_population() {
        // Shard A wears rows 0..4, shard B rows 100..110 — disjoint.
        let mut a = WearTracker::new();
        let mut b = WearTracker::new();
        let mut combined = WearTracker::new();
        for row in 0..4u64 {
            for _ in 0..=(row * 3) {
                a.record_full_write(row);
                combined.record_full_write(row);
            }
        }
        for row in 100..110u64 {
            for _ in 0..(row % 7 + 1) {
                b.record_reset_write(row);
                combined.record_reset_write(row);
            }
        }
        let mut merged = a.summary();
        merged.merge_disjoint(&b.summary());
        let direct = combined.summary();
        assert_eq!(merged.rows, direct.rows);
        assert_eq!(merged.writes, direct.writes);
        assert_eq!(merged.max, direct.max);
        assert!((merged.mean - direct.mean).abs() < 1e-9, "mean");
        assert!((merged.cv - direct.cv).abs() < 1e-9, "cv");
    }

    #[test]
    fn merge_disjoint_handles_empty_sides() {
        let mut t = WearTracker::new();
        t.record_full_write(5);
        t.record_full_write(5);
        let s = t.summary();
        let mut from_empty = WearSummary::default();
        from_empty.merge_disjoint(&s);
        assert_eq!(from_empty, s);
        let mut into_empty = s;
        into_empty.merge_disjoint(&WearSummary::default());
        assert_eq!(into_empty, s);
    }

    #[test]
    fn tracker_snapshot_round_trip() {
        use crate::snap::{SnapReader, SnapWriter};
        let mut t = WearTracker::new();
        t.record_full_write(3);
        t.record_full_write(u64::MAX);
        t.record_reset_write(3);
        let mut w = SnapWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = WearTracker::load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.full_writes(3), 1);
        assert_eq!(back.full_writes(u64::MAX), 1);
        assert_eq!(back.reset_writes(3), 1);
        let mut w2 = SnapWriter::new();
        back.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn full_write_summary_excludes_reset_writes() {
        let mut t = WearTracker::new();
        t.record_full_write(0);
        t.record_reset_write(0);
        t.record_reset_write(1);
        let full = t.full_write_summary();
        assert_eq!(full.writes, 1);
        assert_eq!(full.rows, 1);
        let all = t.summary();
        assert_eq!(all.writes, 3);
        assert_eq!(all.rows, 2);
    }
}
