//! The architecture-policy layer: per-architecture behaviour behind one
//! trait.
//!
//! Each of the paper's four architectures is one [`ArchPolicy`]
//! implementation owning its architecture-specific state:
//!
//! * [`BaselinePolicy`] — stateless; every write is a full PCM write.
//! * [`WomCodePolicy`] — per-row WOM rewrite budgets (and, optionally,
//!   the hidden-page companion table).
//! * [`WomCodeRefreshPolicy`] — WOM budgets plus the §3.2 PCM-refresh
//!   engine re-initializing exhausted rows during idle periods.
//! * [`WcpcmPolicy`] — the §4 per-rank WOM-cache with victim writebacks
//!   and cache refresh.
//!
//! The shared [`Engine`](crate::engine::Engine) drives the clock, the
//! memory arrays, and the metrics; policies decide *what* each demand
//! access does by returning a [`ReadAction`] / [`WriteAction`], and react
//! to refresh ticks and refresh completions. Adding a fifth architecture
//! means implementing this trait in a new file — the engine does not
//! change (see `DESIGN.md`, "Policy layer").

mod baseline;
mod refresh;
mod wcpcm;
mod wom_code;

pub use baseline::BaselinePolicy;
pub use refresh::WomCodeRefreshPolicy;
pub use wcpcm::WcpcmPolicy;
pub use wom_code::WomCodePolicy;

use crate::arch::Architecture;
use crate::config::SystemConfig;
use crate::engine::EngineCore;
use crate::error::WomPcmError;
use crate::metrics::RunMetrics;
use pcm_sim::{Completion, DecodedAddr, ServiceClass, SnapReader, SnapWriter};

/// Which memory array a completion came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArraySide {
    /// The PCM main-memory arrays.
    Main,
    /// The per-rank WOM-cache arrays.
    Cache,
}

/// What a demand read should do, as decided by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAction {
    /// Read main memory.
    Main {
        /// Physical (post-remap) address to read.
        addr: u64,
        /// Hidden-page companion read to charge alongside, if any.
        companion: Option<u64>,
    },
    /// Read the WOM-cache row of `(rank, row)`.
    Cache {
        /// Rank whose cache array holds the data.
        rank: u32,
        /// Cache row to read.
        row: u32,
    },
}

/// What a demand write should do, as decided by the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAction {
    /// Absorbed into an open coalescing window; the policy has already
    /// recorded the merged write's metrics via
    /// [`EngineCore::try_coalesce`].
    Coalesced,
    /// Issue a write to main memory.
    Main {
        /// Physical (post-remap) address to write.
        addr: u64,
        /// Service class (full write vs RESET-only).
        class: ServiceClass,
        /// Coalescing-window key (flat row id).
        row_key: u64,
        /// Hidden-page companion write to charge alongside, if any.
        companion: Option<u64>,
    },
    /// Issue a write to the WOM-cache row of `(rank, row)`.
    Cache {
        /// Rank whose cache array receives the write.
        rank: u32,
        /// Cache row to write.
        row: u32,
        /// Service class (full write vs RESET-only).
        class: ServiceClass,
        /// Coalescing-window key (`rank << 32 | row`).
        merge_key: u64,
    },
}

/// Architecture-specific behaviour plugged into the shared engine.
///
/// Hooks receive `&mut EngineCore` for the shared machinery (clock,
/// address decoding, coalescing, victim queue, metrics); the policy's own
/// state (WOM budgets, refresh tables, cache tags) lives in `self`.
/// Demand enqueues — which may stall and re-enter [`Self::on_tick`] /
/// [`Self::on_completion`] through time advancement — are performed by
/// the engine from the returned actions, never by the policy.
pub trait ArchPolicy: std::fmt::Debug {
    /// Whether the engine should run [`Self::on_tick`] on the staggered
    /// per-rank refresh schedule.
    fn wants_ticks(&self) -> bool {
        false
    }

    /// Decides where a demand read goes.
    ///
    /// # Errors
    ///
    /// Propagates address-decoding and data-verification errors.
    fn on_read(&mut self, core: &mut EngineCore, addr: u64) -> Result<ReadAction, WomPcmError>;

    /// Decides what a demand write does (and updates write-state such as
    /// WOM budgets or cache tags).
    ///
    /// # Errors
    ///
    /// Propagates address-decoding and data-verification errors.
    fn on_write(&mut self, core: &mut EngineCore, addr: u64) -> Result<WriteAction, WomPcmError>;

    /// Periodic refresh opportunity (only called when
    /// [`Self::wants_ticks`] is true).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from refresh enqueues.
    fn on_tick(&mut self, core: &mut EngineCore) -> Result<(), WomPcmError> {
        let _ = core;
        Ok(())
    }

    /// Reacts to a rank-refresh completion (or preemption) on `side`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Internal`] when the completion does not
    /// match a planned refresh (a scheduling bug), and propagates
    /// address-decoding or data-verification errors from the policy's
    /// post-refresh bookkeeping.
    fn on_completion(
        &mut self,
        core: &mut EngineCore,
        side: ArraySide,
        c: &Completion,
    ) -> Result<(), WomPcmError>;

    /// Reacts to a wear-leveling row copy: the destination physical row
    /// `dest` was erased and rewritten once.
    fn on_wear_level_copy(&mut self, core: &mut EngineCore, dest: DecodedAddr) {
        let _ = (core, dest);
    }

    /// Contributes policy-owned statistics to the finalized metrics.
    fn finish(&mut self, core: &EngineCore, result: &mut RunMetrics) {
        let _ = (core, result);
    }

    /// Serializes the policy's architecture-specific state for
    /// snapshot/restore. Stateless policies write nothing.
    fn save_state(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restores state written by [`Self::save_state`] into this policy
    /// (freshly built from the same configuration). Stateless policies
    /// read nothing.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Snapshot`] for truncated or corrupt
    /// payloads.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), WomPcmError> {
        let _ = r;
        Ok(())
    }
}

impl ArchPolicy for Box<dyn ArchPolicy> {
    fn wants_ticks(&self) -> bool {
        (**self).wants_ticks()
    }

    fn on_read(&mut self, core: &mut EngineCore, addr: u64) -> Result<ReadAction, WomPcmError> {
        (**self).on_read(core, addr)
    }

    fn on_write(&mut self, core: &mut EngineCore, addr: u64) -> Result<WriteAction, WomPcmError> {
        (**self).on_write(core, addr)
    }

    fn on_tick(&mut self, core: &mut EngineCore) -> Result<(), WomPcmError> {
        (**self).on_tick(core)
    }

    fn on_completion(
        &mut self,
        core: &mut EngineCore,
        side: ArraySide,
        c: &Completion,
    ) -> Result<(), WomPcmError> {
        (**self).on_completion(core, side, c)
    }

    fn on_wear_level_copy(&mut self, core: &mut EngineCore, dest: DecodedAddr) {
        (**self).on_wear_level_copy(core, dest);
    }

    fn finish(&mut self, core: &EngineCore, result: &mut RunMetrics) {
        (**self).finish(core, result);
    }

    fn save_state(&self, w: &mut SnapWriter) {
        (**self).save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), WomPcmError> {
        (**self).load_state(r)
    }
}

/// Builds the policy matching `config.arch` — the only place the
/// architecture is dispatched on; the engine's per-record paths are
/// architecture-free.
///
/// # Errors
///
/// Returns [`WomPcmError::InvalidConfig`] for inconsistent parameters.
pub fn build(config: &SystemConfig) -> Result<Box<dyn ArchPolicy>, WomPcmError> {
    Ok(match config.arch {
        Architecture::Baseline => Box::new(BaselinePolicy::new()),
        Architecture::WomCode => Box::new(WomCodePolicy::new(config)?),
        Architecture::WomCodeRefresh => Box::new(WomCodeRefreshPolicy::new(config)?),
        Architecture::Wcpcm => Box::new(WcpcmPolicy::new(config)?),
    })
}

/// The WOM rewrite-budget column index of a decoded address under the
/// configured budget granularity.
pub(crate) fn budget_column(config: &SystemConfig, d: &DecodedAddr) -> u32 {
    match config.budget_granularity {
        crate::wom_state::BudgetGranularity::Row => 0,
        crate::wom_state::BudgetGranularity::Column => d.column,
    }
}
