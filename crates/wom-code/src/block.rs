//! Row-level (block) encoding: apply a symbol WOM-code across a whole
//! memory row, as the wide-column and hidden-page organizations do.
//!
//! A PCM row holds thousands of bits; the WOM-code operates on small symbols
//! (2 data bits → 3 wits for the ⟨2²⟩²/3 code). [`BlockCodec`] tiles the
//! symbol code across the row, and [`WitBuffer`] is the bit-addressable cell
//! array the encoded wits live in.

use crate::code::WomCode;
use crate::error::WomCodeError;
use crate::lut::SymbolLut;
use crate::wit::{Pattern, Transitions};
use std::sync::Arc;

/// A growable bit buffer representing the wit states of a memory row.
///
/// Bits are stored little-endian within `u64` words; chunk accessors may
/// cross word boundaries.
///
/// ```
/// use wom_code::WitBuffer;
///
/// let mut buf = WitBuffer::zeros(128);
/// buf.set_chunk(62, 4, 0b1011); // straddles the first word boundary
/// assert_eq!(buf.chunk(62, 4), 0b1011);
/// assert_eq!(buf.count_ones(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WitBuffer {
    words: Vec<u64>,
    len: usize,
}

impl WitBuffer {
    /// Creates an all-zeros buffer of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-ones buffer of `len` bits.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut buf = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        buf.mask_tail();
        buf
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Buffer length in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `1` bits in the buffer.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Reads a `width`-bit chunk starting at bit `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `offset + width > len()`.
    #[must_use]
    pub fn chunk(&self, offset: usize, width: usize) -> u64 {
        assert!(width <= 64, "chunk width {width} exceeds 64");
        assert!(
            offset + width <= self.len,
            "chunk [{offset}, {offset}+{width}) out of range"
        );
        if width == 0 {
            return 0;
        }
        let word = offset / 64;
        let shift = offset % 64;
        let mut value = self.words[word] >> shift;
        if shift + width > 64 {
            value |= self.words[word + 1] << (64 - shift);
        }
        if width < 64 {
            value &= (1u64 << width) - 1;
        }
        value
    }

    /// Writes a `width`-bit chunk starting at bit `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`, `offset + width > len()`, or `value` does not
    /// fit in `width` bits.
    pub fn set_chunk(&mut self, offset: usize, width: usize, value: u64) {
        assert!(width <= 64, "chunk width {width} exceeds 64");
        assert!(
            offset + width <= self.len,
            "chunk [{offset}, {offset}+{width}) out of range"
        );
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value:#x} does not fit in {width} bits"
            );
        }
        if width == 0 {
            return;
        }
        let word = offset / 64;
        let shift = offset % 64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.words[word] &= !(mask << shift);
        self.words[word] |= value << shift;
        if shift + width > 64 {
            let high_bits = shift + width - 64;
            let high_mask = (1u64 << high_bits) - 1;
            self.words[word + 1] &= !high_mask;
            self.words[word + 1] |= value >> (64 - shift);
        }
    }

    /// Copies `other`'s bits into `self` without reallocating — the
    /// in-place counterpart of `clone` for hot loops that reset a buffer
    /// to a saved state (e.g. re-erasing a row between benchmark
    /// iterations).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "copy_from requires equal lengths");
        self.words.copy_from_slice(&other.words);
    }

    /// Counts the `(sets, resets)` transitions from `self` to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`WomCodeError::LengthMismatch`] if lengths differ.
    pub fn transitions_to(&self, other: &Self) -> Result<Transitions, WomCodeError> {
        if self.len != other.len {
            return Err(WomCodeError::LengthMismatch {
                expected: self.len,
                actual: other.len,
            });
        }
        let mut t = Transitions::default();
        for (a, b) in self.words.iter().zip(&other.words) {
            t.sets += (!a & b).count_ones();
            t.resets += (a & !b).count_ones();
        }
        Ok(t)
    }
}

/// Tiles a symbol-level [`WomCode`] across a memory row.
///
/// The codec is stateless: the caller owns the [`WitBuffer`] (the cell
/// array) and the write-generation counter, mirroring how the memory
/// controller in the paper tracks per-row rewrite state.
///
/// ```
/// use wom_code::{BlockCodec, Inverted, Rs23Code};
///
/// # fn main() -> Result<(), wom_code::WomCodeError> {
/// // A 64-bit data row stored in the inverted (PCM) RS code: 96 wits.
/// let codec = BlockCodec::new(Inverted::new(Rs23Code::new()), 64)?;
/// assert_eq!(codec.encoded_bits(), 96);
///
/// let mut cells = codec.erased_buffer();
/// let t1 = codec.encode_row(0, &0xDEAD_BEEF_u64.to_le_bytes(), &mut cells)?;
/// assert_eq!(t1.sets, 0); // first write is pure RESET in inverted code
/// assert_eq!(codec.decode_row(&cells)?, 0xDEAD_BEEF_u64.to_le_bytes());
///
/// let t2 = codec.encode_row(1, &0x1234_5678_u64.to_le_bytes(), &mut cells)?;
/// assert_eq!(t2.sets, 0); // rewrite is pure RESET too
/// assert_eq!(codec.decode_row(&cells)?, 0x1234_5678_u64.to_le_bytes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockCodec<C> {
    code: C,
    symbols: usize,
    data_bits: usize,
    /// Precompiled symbol tables (shared across clones); `None` when the
    /// code's geometry is too large to tabulate — the per-symbol
    /// reference path is used then.
    lut: Option<Arc<SymbolLut>>,
}

impl<C: WomCode> BlockCodec<C> {
    /// Creates a codec for rows of `row_data_bits` data bits.
    ///
    /// # Errors
    ///
    /// Returns [`WomCodeError::LengthMismatch`] if `row_data_bits` is zero,
    /// not a multiple of 8 (rows are byte-addressed), or not divisible by
    /// the code's `data_bits()`.
    pub fn new(code: C, row_data_bits: usize) -> Result<Self, WomCodeError> {
        let per_symbol = code.data_bits() as usize;
        if row_data_bits == 0
            || !row_data_bits.is_multiple_of(8)
            || !row_data_bits.is_multiple_of(per_symbol)
        {
            return Err(WomCodeError::LengthMismatch {
                expected: per_symbol.max(8),
                actual: row_data_bits,
            });
        }
        let lut = SymbolLut::build(&code).map(Arc::new);
        Ok(Self {
            code,
            symbols: row_data_bits / per_symbol,
            data_bits: row_data_bits,
            lut,
        })
    }

    /// Whether the word-parallel LUT fast path is available for this
    /// code's geometry.
    #[must_use]
    pub fn has_fast_path(&self) -> bool {
        self.lut.is_some()
    }

    /// The precompiled symbol tables, when the geometry allowed them.
    #[must_use]
    pub fn symbol_lut(&self) -> Option<&SymbolLut> {
        self.lut.as_deref()
    }

    /// The symbol code used per chunk.
    #[must_use]
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Number of code symbols tiled across a row.
    #[must_use]
    pub fn symbols(&self) -> usize {
        self.symbols
    }

    /// Raw data bits per row.
    #[must_use]
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// Encoded wits per row (`symbols × code.wits()`), e.g. 1.5× the data
    /// bits for the ⟨2²⟩²/3 code — the wide-column width of the paper.
    #[must_use]
    pub fn encoded_bits(&self) -> usize {
        self.symbols * self.code.wits() as usize
    }

    /// Rewrite limit of the row (the symbol code's `writes()`).
    #[must_use]
    pub fn rewrite_limit(&self) -> u32 {
        self.code.writes()
    }

    /// A freshly erased cell buffer for one row.
    #[must_use]
    pub fn erased_buffer(&self) -> WitBuffer {
        match self.code.orientation() {
            crate::wit::Orientation::SetOnly => WitBuffer::zeros(self.encoded_bits()),
            crate::wit::Orientation::ResetOnly => WitBuffer::ones(self.encoded_bits()),
        }
    }

    /// Encodes `data` (exactly `data_bits()/8` bytes) into `cells` at write
    /// generation `gen`, returning the aggregate wit transitions — the
    /// quantity that determines the physical write latency.
    ///
    /// # Errors
    ///
    /// * [`WomCodeError::LengthMismatch`] if `data` or `cells` have the
    ///   wrong size.
    /// * Any error from the symbol code (exhausted generation, illegal
    ///   transition) — in that case `cells` is left unmodified.
    pub fn encode_row(
        &self,
        gen: u32,
        data: &[u8],
        cells: &mut WitBuffer,
    ) -> Result<Transitions, WomCodeError> {
        if self.lut.is_some() {
            let mut scratch = RowScratch::new();
            self.encode_row_into(gen, data, cells, &mut scratch)
        } else {
            self.encode_row_reference(gen, data, cells)
        }
    }

    /// The per-symbol reference implementation of [`Self::encode_row`]:
    /// one [`WomCode::encode`] call per symbol, with a `Vec<Pattern>`
    /// staging buffer. Kept public as the validation oracle the LUT fast
    /// path is tested against (and as the only path for codes too large
    /// to tabulate).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::encode_row`].
    pub fn encode_row_reference(
        &self,
        gen: u32,
        data: &[u8],
        cells: &mut WitBuffer,
    ) -> Result<Transitions, WomCodeError> {
        self.check_row_args(data.len(), cells.len())?;
        let dbits = self.code.data_bits() as usize;
        let wbits = self.code.wits() as usize;
        // Two-pass: validate all symbols first so a failure cannot leave the
        // row half-written.
        let mut new_patterns = Vec::with_capacity(self.symbols);
        let mut total = Transitions::default();
        for s in 0..self.symbols {
            let value = read_bits(data, s * dbits, dbits);
            let current = Pattern::from_bits(cells.chunk(s * wbits, wbits), wbits);
            let next = self.code.encode(gen, value, current)?;
            let t = current.transitions_to(next)?;
            total.sets += t.sets;
            total.resets += t.resets;
            new_patterns.push(next);
        }
        for (s, p) in new_patterns.into_iter().enumerate() {
            cells.set_chunk(s * wbits, wbits, p.bits());
        }
        Ok(total)
    }

    /// Decodes the row's cells back into raw data bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WomCodeError::LengthMismatch`] if `cells` has the wrong
    /// size.
    pub fn decode_row(&self, cells: &WitBuffer) -> Result<Vec<u8>, WomCodeError> {
        let mut out = vec![0u8; self.data_bits / 8];
        self.decode_row_into(cells, &mut out)?;
        Ok(out)
    }

    /// Word-parallel row encode into caller-provided scratch: symbols are
    /// read straight out of the [`WitBuffer`]'s `u64` words, looked up in
    /// the precompiled [`SymbolLut`], and staged in `scratch` — no heap
    /// allocation once `scratch` has warmed up. Transition totals come
    /// from whole-word XOR popcounts rather than per-symbol counting.
    ///
    /// Behaviour is bit-identical to [`Self::encode_row_reference`],
    /// including the all-or-nothing guarantee: on any error `cells` is
    /// left unmodified. Codes too large to tabulate (no
    /// [`Self::has_fast_path`]) fall back to the reference path, which
    /// allocates its staging buffer per call.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::encode_row`].
    pub fn encode_row_into(
        &self,
        gen: u32,
        data: &[u8],
        cells: &mut WitBuffer,
        scratch: &mut RowScratch,
    ) -> Result<Transitions, WomCodeError> {
        let Some(lut) = self.lut.as_deref() else {
            return self.encode_row_reference(gen, data, cells);
        };
        self.check_row_args(data.len(), cells.len())?;
        if gen >= self.code.writes() {
            return Err(WomCodeError::GenerationExhausted {
                requested: gen,
                limit: self.code.writes(),
            });
        }
        let dbits = self.code.data_bits();
        let wbits = self.code.wits() as usize;
        scratch.words.clear();
        scratch.words.resize(cells.words.len(), 0);
        let mut reader = BitReader::new(data);
        let mut bit = 0usize;
        for _ in 0..self.symbols {
            let current = word_chunk(&cells.words, bit, wbits);
            // womlint::allow(hotpath/alloc, reason = "BitReader::read pulls bits from the input slice; it does not allocate (the ban targets FunctionalMemory::read)")
            let value = reader.read(dbits);
            let Some(next) = lut.encode_bits(gen, current, value) else {
                // Cold path: re-run the symbol code to surface the exact
                // error the reference path would have produced. `cells`
                // has not been touched.
                return Err(self.symbol_error(gen, value, current, wbits));
            };
            word_merge(&mut scratch.words, bit, next);
            bit += wbits;
        }
        let mut total = Transitions::default();
        for (&old, &new) in cells.words.iter().zip(&scratch.words) {
            total.sets += (!old & new).count_ones();
            total.resets += (old & !new).count_ones();
        }
        cells.words.copy_from_slice(&scratch.words);
        Ok(total)
    }

    /// Decodes the row's cells into a caller-provided byte slice without
    /// allocating — the word-parallel counterpart of
    /// [`Self::decode_row`]. Uses the [`SymbolLut`] when available and
    /// the per-symbol reference decode otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`WomCodeError::LengthMismatch`] if `cells` or `out` have
    /// the wrong size.
    pub fn decode_row_into(&self, cells: &WitBuffer, out: &mut [u8]) -> Result<(), WomCodeError> {
        let Some(lut) = self.lut.as_deref() else {
            return self.decode_row_reference(cells, out);
        };
        self.check_row_args(out.len(), cells.len())?;
        let dbits = self.code.data_bits();
        let wbits = self.code.wits() as usize;
        let mut writer = BitWriter::new(out);
        let mut bit = 0usize;
        for _ in 0..self.symbols {
            let current = word_chunk(&cells.words, bit, wbits);
            writer.write(lut.decode(current), dbits);
            bit += wbits;
        }
        Ok(())
    }

    /// The per-symbol reference implementation of
    /// [`Self::decode_row_into`]: one [`Pattern`] construction and
    /// [`WomCode::decode`] call per symbol. Kept public as the validation
    /// oracle and benchmark baseline for the LUT decode (and as the only
    /// path for codes too large to tabulate).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::decode_row_into`].
    pub fn decode_row_reference(
        &self,
        cells: &WitBuffer,
        out: &mut [u8],
    ) -> Result<(), WomCodeError> {
        self.check_row_args(out.len(), cells.len())?;
        let dbits = self.code.data_bits();
        let wbits = self.code.wits() as usize;
        for s in 0..self.symbols {
            let pattern = Pattern::from_bits(cells.chunk(s * wbits, wbits), wbits);
            write_bits(
                out,
                s * dbits as usize,
                dbits as usize,
                self.code.decode(pattern),
            );
        }
        Ok(())
    }

    /// Validates row-level argument sizes shared by encode and decode.
    fn check_row_args(&self, data_bytes: usize, cell_bits: usize) -> Result<(), WomCodeError> {
        if data_bytes * 8 != self.data_bits {
            return Err(WomCodeError::LengthMismatch {
                expected: self.data_bits,
                actual: data_bytes * 8,
            });
        }
        if cell_bits != self.encoded_bits() {
            return Err(WomCodeError::LengthMismatch {
                expected: self.encoded_bits(),
                actual: cell_bits,
            });
        }
        Ok(())
    }

    /// Reproduces the exact symbol-level error for a LUT miss.
    #[cold]
    fn symbol_error(&self, gen: u32, data: u64, current: u64, wbits: usize) -> WomCodeError {
        match self
            .code
            .encode(gen, data, Pattern::from_bits(current, wbits))
        {
            Err(e) => e,
            Ok(_) => unreachable!("SymbolLut and WomCode disagree on encode success"),
        }
    }
}

/// Caller-owned staging buffer for [`BlockCodec::encode_row_into`].
///
/// Holds the next row image while symbols are validated, so a failed
/// encode cannot leave the row half-written and a warm scratch makes the
/// whole encode allocation-free. One scratch can be reused across codecs
/// and row sizes; it grows to the largest row it has seen.
#[derive(Debug, Clone, Default)]
pub struct RowScratch {
    words: Vec<u64>,
}

impl RowScratch {
    /// Creates an empty scratch (it sizes itself on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity in bits (diagnostics only).
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        self.words.capacity() * 64
    }
}

/// Reads a `width`-bit chunk starting at `offset` from packed words,
/// crossing at most one word boundary (`width ≤ 16 < 64`).
#[inline]
fn word_chunk(words: &[u64], offset: usize, width: usize) -> u64 {
    let word = offset / 64;
    let shift = offset % 64;
    let mut value = words[word] >> shift;
    if shift + width > 64 {
        value |= words[word + 1] << (64 - shift);
    }
    value & ((1u64 << width) - 1)
}

/// ORs `value` into zero-initialized packed words at bit `offset` (the
/// staging buffer starts all-zeros, so no clearing mask is needed).
#[inline]
fn word_merge(words: &mut [u64], offset: usize, value: u64) {
    let word = offset / 64;
    let shift = offset % 64;
    words[word] |= value << shift;
    if shift != 0 {
        if let Some(high) = words.get_mut(word + 1) {
            *high |= value >> (64 - shift);
        }
    }
}

/// Sequential little-endian bit reader over a byte slice (symbol widths
/// are at most 16 bits, so the accumulator never overflows).
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    acc_bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    #[inline]
    fn read(&mut self, width: u32) -> u64 {
        while self.acc_bits < width {
            self.acc |= u64::from(self.bytes[self.pos]) << self.acc_bits;
            self.pos += 1;
            self.acc_bits += 8;
        }
        let value = self.acc & ((1u64 << width) - 1);
        self.acc >>= width;
        self.acc_bits -= width;
        value
    }
}

/// Sequential little-endian bit writer over a byte slice; flushes whole
/// bytes as they fill, so a row whose data bits are a byte multiple ends
/// exactly flush.
struct BitWriter<'a> {
    bytes: &'a mut [u8],
    pos: usize,
    acc: u64,
    acc_bits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(bytes: &'a mut [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    #[inline]
    fn write(&mut self, value: u64, width: u32) {
        self.acc |= value << self.acc_bits;
        self.acc_bits += width;
        while self.acc_bits >= 8 {
            self.bytes[self.pos] = self.acc as u8;
            self.pos += 1;
            self.acc >>= 8;
            self.acc_bits -= 8;
        }
    }
}

fn read_bits(bytes: &[u8], offset: usize, width: usize) -> u64 {
    debug_assert!(width <= 64);
    let mut value = 0u64;
    for i in 0..width {
        let bit = offset + i;
        if (bytes[bit / 8] >> (bit % 8)) & 1 == 1 {
            value |= 1 << i;
        }
    }
    value
}

fn write_bits(bytes: &mut [u8], offset: usize, width: usize, value: u64) {
    debug_assert!(width <= 64);
    for i in 0..width {
        let bit = offset + i;
        if (value >> i) & 1 == 1 {
            bytes[bit / 8] |= 1 << (bit % 8);
        } else {
            bytes[bit / 8] &= !(1 << (bit % 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverted::Inverted;
    use crate::rs23::Rs23Code;

    fn pcm_codec(bits: usize) -> BlockCodec<Inverted<Rs23Code>> {
        BlockCodec::new(Inverted::new(Rs23Code::new()), bits).unwrap()
    }

    #[test]
    fn witbuffer_chunk_round_trip_across_boundary() {
        let mut buf = WitBuffer::zeros(200);
        buf.set_chunk(60, 10, 0b10_1101_0011);
        assert_eq!(buf.chunk(60, 10), 0b10_1101_0011);
        // Neighbours untouched.
        assert_eq!(buf.chunk(0, 60), 0);
        assert_eq!(buf.chunk(70, 64), 0);
    }

    #[test]
    fn witbuffer_ones_masks_tail() {
        let buf = WitBuffer::ones(70);
        assert_eq!(buf.count_ones(), 70);
    }

    #[test]
    fn witbuffer_full_word_chunks() {
        let mut buf = WitBuffer::zeros(128);
        buf.set_chunk(64, 64, u64::MAX);
        assert_eq!(buf.chunk(64, 64), u64::MAX);
        assert_eq!(buf.chunk(0, 64), 0);
    }

    #[test]
    fn witbuffer_transitions() {
        let a = WitBuffer::zeros(100);
        let b = WitBuffer::ones(100);
        let t = a.transitions_to(&b).unwrap();
        assert_eq!(t.sets, 100);
        assert_eq!(t.resets, 0);
        assert!(a.transitions_to(&WitBuffer::zeros(99)).is_err());
    }

    #[test]
    fn geometry_of_rs23_row() {
        let codec = pcm_codec(4096 * 8); // a 4 KB page
        assert_eq!(codec.symbols(), 4096 * 8 / 2);
        assert_eq!(codec.encoded_bits(), 4096 * 8 * 3 / 2); // 6 KB of wits
        assert_eq!(codec.rewrite_limit(), 2);
    }

    #[test]
    fn rejects_bad_row_sizes() {
        assert!(BlockCodec::new(Rs23Code::new(), 0).is_err());
        assert!(BlockCodec::new(Rs23Code::new(), 12).is_err()); // not byte-multiple
        let codec = pcm_codec(64);
        let mut cells = codec.erased_buffer();
        assert!(codec.encode_row(0, &[0u8; 7], &mut cells).is_err());
        assert!(codec
            .encode_row(0, &[0u8; 8], &mut WitBuffer::zeros(5))
            .is_err());
        assert!(codec.decode_row(&WitBuffer::zeros(5)).is_err());
    }

    #[test]
    fn encode_decode_round_trip_both_generations() {
        let codec = pcm_codec(64);
        let mut cells = codec.erased_buffer();
        let d1 = 0xA5C3_0F96_1234_9ABCu64.to_le_bytes();
        let d2 = 0x0123_4567_89AB_CDEFu64.to_le_bytes();
        codec.encode_row(0, &d1, &mut cells).unwrap();
        assert_eq!(codec.decode_row(&cells).unwrap(), d1);
        codec.encode_row(1, &d2, &mut cells).unwrap();
        assert_eq!(codec.decode_row(&cells).unwrap(), d2);
    }

    #[test]
    fn inverted_rows_never_set_within_limit() {
        let codec = pcm_codec(256);
        let mut cells = codec.erased_buffer();
        let d1 = vec![0x5Au8; 32];
        let d2 = vec![0xC3u8; 32];
        let t1 = codec.encode_row(0, &d1, &mut cells).unwrap();
        let t2 = codec.encode_row(1, &d2, &mut cells).unwrap();
        assert_eq!(t1.sets, 0);
        assert_eq!(t2.sets, 0);
    }

    #[test]
    fn exhausted_row_fails_without_partial_write() {
        let codec = pcm_codec(64);
        let mut cells = codec.erased_buffer();
        codec.encode_row(0, &[0x11u8; 8], &mut cells).unwrap();
        codec.encode_row(1, &[0x22u8; 8], &mut cells).unwrap();
        let snapshot = cells.clone();
        let err = codec.encode_row(2, &[0x33u8; 8], &mut cells);
        assert!(matches!(err, Err(WomCodeError::GenerationExhausted { .. })));
        assert_eq!(cells, snapshot, "failed encode must not modify cells");
    }

    #[test]
    fn rewriting_same_data_is_free() {
        let codec = pcm_codec(64);
        let mut cells = codec.erased_buffer();
        let d = [0x42u8; 8];
        codec.encode_row(0, &d, &mut cells).unwrap();
        let t = codec.encode_row(1, &d, &mut cells).unwrap();
        assert!(t.is_noop());
        assert_eq!(codec.decode_row(&cells).unwrap(), d);
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut bytes = vec![0u8; 4];
        write_bits(&mut bytes, 3, 7, 0b1011001);
        assert_eq!(read_bits(&bytes, 3, 7), 0b1011001);
        write_bits(&mut bytes, 3, 7, 0);
        assert_eq!(bytes, vec![0u8; 4]);
    }
}
