//! The hidden-page WOM-code PCM organization (§3.1, Fig. 3).
//!
//! Instead of widening columns, the memory controller reserves a range of
//! ordinary pages — *hidden pages*, invisible to the operating system — and
//! pairs each visible row with hidden capacity for the code's extra bits
//! (the upper `0.5·YZ` bits for the ⟨2²⟩²/3 code). The controller must
//! maintain a page table, recruit unused pages, and release them when a
//! code is switched, but in exchange the organization supports *dynamic*
//! code selection: any code whose expansion fits the reserved fraction.

use crate::error::WomPcmError;
use crate::rowmap::RowMap;
use pcm_sim::{MemoryGeometry, SnapError, SnapReader, SnapWriter};
use wom_code::WomCode;

/// Packs a `(bank, row)` pair into one [`RowMap`] key. Rows of one bank
/// occupy one contiguous key range, so consecutive accesses to nearby
/// rows of a bank land on the same leaf page.
fn pack(bank: u32, row: u32) -> u64 {
    (u64::from(bank) << 32) | u64::from(row)
}

/// Dynamic hidden-page manager: page table + per-bank free lists.
///
/// Rows `[visible_rows, rows_per_bank)` of every bank are reserved as the
/// hidden pool. A visible row recruits a hidden row from its own bank the
/// first time it is written (so the pair shares a row buffer locality
/// domain), and releases it when the mapping is dropped.
///
/// ```
/// use wom_pcm::hidden_page::HiddenPageTable;
/// use pcm_sim::MemoryGeometry;
///
/// # fn main() -> Result<(), wom_pcm::WomPcmError> {
/// // Reserve enough of each bank for the <2^2>^2/3 code (expansion 1.5):
/// let mut table = HiddenPageTable::new(MemoryGeometry::tiny(), 1.5)?;
/// let hidden = table.recruit(/*bank*/ 0, /*visible row*/ 3)?;
/// assert!(hidden >= table.visible_rows());
/// // The mapping is stable:
/// assert_eq!(table.recruit(0, 3)?, hidden);
/// table.release(0, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HiddenPageTable {
    geometry: MemoryGeometry,
    expansion: f64,
    visible_rows: u32,
    /// How many visible rows share one hidden row
    /// (`⌊1 / (expansion − 1)⌋`, e.g. 2 for the ⟨2²⟩²/3 code).
    slots_per_hidden: u32,
    /// visible packed (bank, row) → hidden row index in the same bank.
    page_table: RowMap<u32>,
    /// Occupied slots per packed (bank, hidden row).
    slot_usage: RowMap<u32>,
    /// Per-bank free lists of completely unused hidden rows.
    free: Vec<Vec<u32>>,
    /// Per-bank partially filled hidden row, if any.
    partial: Vec<Option<u32>>,
}

impl HiddenPageTable {
    /// Creates a manager reserving enough rows per bank for codes up to
    /// `expansion` (1.5 reserves one hidden row per two visible rows).
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] if `expansion < 1` or the
    /// geometry has too few rows to reserve any hidden pool (when
    /// `expansion > 1`).
    pub fn new(geometry: MemoryGeometry, expansion: f64) -> Result<Self, WomPcmError> {
        if expansion.is_nan() || expansion < 1.0 {
            return Err(WomPcmError::InvalidConfig(format!(
                "expansion must be at least 1, got {expansion}"
            )));
        }
        // visible / total = 1 / expansion.
        let visible_rows = (f64::from(geometry.rows_per_bank) / expansion).floor() as u32;
        if visible_rows == 0 || (expansion > 1.0 && visible_rows == geometry.rows_per_bank) {
            return Err(WomPcmError::InvalidConfig(format!(
                "geometry with {} rows/bank cannot host expansion {expansion}",
                geometry.rows_per_bank
            )));
        }
        let banks = geometry.total_banks() as usize;
        let free = vec![(visible_rows..geometry.rows_per_bank).rev().collect(); banks];
        // A hidden row stores (expansion - 1) rows' worth of extra bits
        // for that many visible rows; at expansion 1.5 two visible rows
        // share one hidden row.
        let slots_per_hidden = if expansion > 1.0 {
            ((1.0 / (expansion - 1.0)).floor() as u32).max(1)
        } else {
            u32::MAX // expansion 1.0 never recruits
        };
        Ok(Self {
            geometry,
            expansion,
            visible_rows,
            slots_per_hidden,
            page_table: RowMap::new(),
            slot_usage: RowMap::new(),
            free,
            partial: vec![None; banks],
        })
    }

    /// Visible rows sharing one hidden row (2 for the ⟨2²⟩²/3 code).
    #[must_use]
    pub fn slots_per_hidden(&self) -> u32 {
        self.slots_per_hidden
    }

    /// The geometry this manager was built for.
    #[must_use]
    pub fn geometry(&self) -> MemoryGeometry {
        self.geometry
    }

    /// Rows per bank visible to the operating system.
    #[must_use]
    pub fn visible_rows(&self) -> u32 {
        self.visible_rows
    }

    /// Rows per bank reserved for the hidden pool.
    #[must_use]
    pub fn hidden_rows(&self) -> u32 {
        self.geometry.rows_per_bank - self.visible_rows
    }

    /// The reserved expansion budget.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        self.expansion
    }

    /// Capacity visible to the OS, in bytes.
    #[must_use]
    pub fn visible_capacity_bytes(&self) -> u64 {
        u64::from(self.visible_rows)
            * u64::from(self.geometry.row_bytes)
            * u64::from(self.geometry.total_banks())
    }

    /// Whether `code` can be configured dynamically on this reservation —
    /// the flexibility advantage over [`crate::wide_column::WideColumn`].
    #[must_use]
    pub fn supports<C: WomCode + ?Sized>(&self, code: &C) -> bool {
        code.expansion() <= self.expansion + 1e-12
    }

    /// The hidden row currently paired with a visible `(bank, row)`, if
    /// one has been recruited.
    #[must_use]
    pub fn lookup(&self, bank: u32, row: u32) -> Option<u32> {
        self.page_table.get(pack(bank, row)).copied()
    }

    /// Recruits (or returns the existing) hidden row for a visible row.
    ///
    /// `bank` is the flat bank index across the channel.
    ///
    /// # Errors
    ///
    /// * [`WomPcmError::InvalidConfig`] if `bank`/`row` are out of range or
    ///   `row` is itself a hidden row.
    /// * [`WomPcmError::InvalidConfig`] if the bank's hidden pool is
    ///   exhausted (cannot happen while the reservation matches the code's
    ///   expansion, but dynamic reconfiguration can over-commit).
    pub fn recruit(&mut self, bank: u32, row: u32) -> Result<u32, WomPcmError> {
        if bank >= self.geometry.total_banks() {
            return Err(WomPcmError::InvalidConfig(format!(
                "bank {bank} out of range"
            )));
        }
        if row >= self.visible_rows {
            return Err(WomPcmError::InvalidConfig(format!(
                "row {row} is not a visible row (visible rows: {})",
                self.visible_rows
            )));
        }
        if let Some(&hidden) = self.page_table.get(pack(bank, row)) {
            return Ok(hidden);
        }
        // Fill the bank's partial hidden row first; otherwise take a fresh
        // one from the pool.
        let hidden = match self.partial[bank as usize] {
            Some(h) => h,
            None => {
                let fresh = self.free[bank as usize].pop().ok_or_else(|| {
                    WomPcmError::InvalidConfig(format!("hidden pool of bank {bank} exhausted"))
                })?;
                self.partial[bank as usize] = Some(fresh);
                fresh
            }
        };
        let used = self.slot_usage.get_or_insert_with(pack(bank, hidden), || 0);
        *used += 1;
        if *used >= self.slots_per_hidden {
            self.partial[bank as usize] = None; // row is full
        }
        self.page_table.insert(pack(bank, row), hidden);
        Ok(hidden)
    }

    /// Releases the hidden row paired with `(bank, row)` back to the free
    /// pool. Releasing an unmapped row is a no-op.
    pub fn release(&mut self, bank: u32, row: u32) {
        let Some(hidden) = self.page_table.remove(pack(bank, row)) else {
            return;
        };
        let used = self
            .slot_usage
            .get_mut(pack(bank, hidden))
            .expect("mapped rows have slot usage");
        *used -= 1;
        if *used == 0 {
            self.slot_usage.remove(pack(bank, hidden));
            if self.partial[bank as usize] == Some(hidden) {
                self.partial[bank as usize] = None;
            }
            self.free[bank as usize].push(hidden);
        } else if self.partial[bank as usize].is_none() {
            // The row has a free slot again; reuse it before fresh rows.
            self.partial[bank as usize] = Some(hidden);
        }
    }

    /// Currently recruited mappings.
    #[must_use]
    pub fn mapped_count(&self) -> usize {
        self.page_table.len()
    }

    /// Serializes the manager for snapshot/restore. The geometry itself
    /// is not written — [`load_state`](Self::load_state) receives it from
    /// the restored configuration and validates consistency.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_f64(self.expansion);
        w.put_usize(self.page_table.len());
        for (key, &hidden) in self.page_table.iter() {
            w.put_u64(key);
            w.put_u32(hidden);
        }
        w.put_usize(self.slot_usage.len());
        for (key, &used) in self.slot_usage.iter() {
            w.put_u64(key);
            w.put_u32(used);
        }
        for bank_free in &self.free {
            w.put_usize(bank_free.len());
            for &row in bank_free {
                w.put_u32(row);
            }
        }
        for p in &self.partial {
            match p {
                None => w.put_bool(false),
                Some(row) => {
                    w.put_bool(true);
                    w.put_u32(*row);
                }
            }
        }
    }

    /// Decodes a manager written by [`save_state`](Self::save_state) for
    /// the same `geometry`.
    ///
    /// # Errors
    ///
    /// Propagates payload truncation; [`SnapError::Corrupt`] when the
    /// stored expansion cannot host this geometry or rows are out of
    /// range.
    pub fn load_state(geometry: MemoryGeometry, r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let expansion = r.take_f64()?;
        let mut table = Self::new(geometry, expansion)
            .map_err(|_| SnapError::Corrupt("hidden page reservation parameters"))?;
        let rows_per_bank = geometry.rows_per_bank;
        let mapped = r.take_len(12)?;
        table.page_table = RowMap::new();
        for _ in 0..mapped {
            let key = r.take_u64()?;
            let hidden = r.take_u32()?;
            if hidden >= rows_per_bank {
                return Err(SnapError::Corrupt("hidden row out of range"));
            }
            table.page_table.insert(key, hidden);
        }
        let used_rows = r.take_len(12)?;
        table.slot_usage = RowMap::new();
        for _ in 0..used_rows {
            let key = r.take_u64()?;
            let used = r.take_u32()?;
            table.slot_usage.insert(key, used);
        }
        for bank_free in table.free.iter_mut() {
            let len = r.take_len(4)?;
            bank_free.clear();
            for _ in 0..len {
                let row = r.take_u32()?;
                if row >= rows_per_bank {
                    return Err(SnapError::Corrupt("free hidden row out of range"));
                }
                bank_free.push(row);
            }
        }
        for p in table.partial.iter_mut() {
            *p = if r.take_bool()? {
                Some(r.take_u32()?)
            } else {
                None
            };
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wom_code::{Inverted, Rs23Code};

    fn table() -> HiddenPageTable {
        HiddenPageTable::new(MemoryGeometry::tiny(), 1.5).unwrap()
    }

    #[test]
    fn reservation_split_matches_expansion() {
        let t = table();
        // tiny: 64 rows/bank, expansion 1.5 -> 42 visible, 22 hidden.
        assert_eq!(t.visible_rows(), 42);
        assert_eq!(t.hidden_rows(), 22);
        assert!(t.supports(&Inverted::new(Rs23Code::new())));
        assert_eq!(
            t.visible_capacity_bytes(),
            42 * 256 * u64::from(MemoryGeometry::tiny().total_banks())
        );
    }

    #[test]
    fn recruit_is_stable_and_release_recycles() {
        let mut t = table();
        let h1 = t.recruit(0, 0).unwrap();
        let h2 = t.recruit(0, 0).unwrap();
        assert_eq!(h1, h2, "mapping must be stable");
        assert!(h1 >= t.visible_rows());
        assert_eq!(t.mapped_count(), 1);
        t.release(0, 0);
        assert_eq!(t.mapped_count(), 0);
        assert_eq!(t.lookup(0, 0), None);
        // The freed row is recyclable.
        let h3 = t.recruit(0, 1).unwrap();
        assert_eq!(h3, h1);
    }

    #[test]
    fn pools_are_per_bank() {
        let mut t = table();
        let a = t.recruit(0, 0).unwrap();
        let b = t.recruit(1, 0).unwrap();
        assert_eq!(a, b, "independent pools start from the same row index");
    }

    #[test]
    fn reservation_is_exactly_sufficient() {
        // Two visible rows share each hidden row at expansion 1.5, so the
        // reserved pool fits every visible row with nothing to spare.
        let mut t = table();
        assert_eq!(t.slots_per_hidden(), 2);
        for row in 0..t.visible_rows() {
            t.recruit(0, row)
                .unwrap_or_else(|e| panic!("row {row}: {e}"));
        }
        // 42 visible rows packed 2-per-hidden-row use 21 of the 22
        // reserved rows.
        let used: std::collections::BTreeSet<u32> = (0..t.visible_rows())
            .map(|r| t.lookup(0, r).unwrap())
            .collect();
        assert_eq!(used.len() as u32, t.visible_rows().div_ceil(2));
    }

    #[test]
    fn visible_rows_share_hidden_rows_pairwise() {
        let mut t = table();
        let a = t.recruit(0, 0).unwrap();
        let b = t.recruit(0, 1).unwrap();
        let c = t.recruit(0, 2).unwrap();
        assert_eq!(a, b, "two visible rows share one hidden row");
        assert_ne!(a, c, "the third starts a new hidden row");
    }

    #[test]
    fn release_frees_slots_before_rows() {
        let mut t = table();
        let a = t.recruit(0, 0).unwrap();
        let _b = t.recruit(0, 1).unwrap();
        t.release(0, 0);
        // The freed slot is reused before a fresh hidden row.
        let c = t.recruit(0, 5).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn rejects_hidden_row_as_visible() {
        let mut t = table();
        let hidden_row = t.visible_rows(); // first hidden row index
        assert!(t.recruit(0, hidden_row).is_err());
        assert!(t.recruit(9999, 0).is_err());
    }

    #[test]
    fn rejects_impossible_geometry() {
        assert!(HiddenPageTable::new(MemoryGeometry::tiny(), 0.5).is_err());
        // Expansion so large nothing stays visible.
        assert!(HiddenPageTable::new(MemoryGeometry::tiny(), 1e9).is_err());
    }

    #[test]
    fn identity_expansion_reserves_nothing() {
        let t = HiddenPageTable::new(MemoryGeometry::tiny(), 1.0).unwrap();
        assert_eq!(t.hidden_rows(), 0);
        assert_eq!(t.visible_rows(), MemoryGeometry::tiny().rows_per_bank);
    }
}
