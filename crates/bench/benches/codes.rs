//! Microbenchmarks of the coding layer: symbol encode/decode and
//! row-level block encoding — the operations a WOM-code memory controller
//! performs on every access.

use std::hint::black_box;
use wom_code::{BlockCodec, Inverted, Pattern, Rs23Code, TabularWomCode, WomCode};
use wom_pcm_bench::timing::bench;

fn symbol_encode() {
    let plain = Rs23Code::new();
    let inverted = Inverted::new(Rs23Code::new());
    let tabular = TabularWomCode::rivest_shamir_23();

    let erased = plain.initial_pattern();
    bench("symbol_encode/rs23_first_write", || {
        plain.encode(0, black_box(0b10), erased).unwrap()
    });
    let first = plain.encode(0, 0b01, plain.initial_pattern()).unwrap();
    bench("symbol_encode/rs23_second_write", || {
        plain.encode(1, black_box(0b10), first).unwrap()
    });
    let first = inverted
        .encode(0, 0b01, inverted.initial_pattern())
        .unwrap();
    bench("symbol_encode/inverted_rs23_second_write", || {
        inverted.encode(1, black_box(0b10), first).unwrap()
    });
    let first = tabular.encode(0, 0b01, tabular.initial_pattern()).unwrap();
    bench("symbol_encode/tabular_rs23_second_write", || {
        tabular.encode(1, black_box(0b10), first).unwrap()
    });
}

fn symbol_decode() {
    let plain = Rs23Code::new();
    let inverted = Inverted::new(Rs23Code::new());
    let p = Pattern::from_bits(0b101, 3);
    bench("symbol_decode/rs23_xor_decode", || {
        plain.decode(black_box(p))
    });
    let q = Pattern::from_bits(0b010, 3);
    bench("symbol_decode/inverted_rs23_decode", || {
        inverted.decode(black_box(q))
    });
}

fn block_codec() {
    // A 1 KiB PCM row, the paper's row size.
    const ROW_BYTES: usize = 1024;
    let codec = BlockCodec::new(Inverted::new(Rs23Code::new()), ROW_BYTES * 8).unwrap();
    let data1 = vec![0xA5u8; ROW_BYTES];
    let data2 = vec![0x3Cu8; ROW_BYTES];

    bench("block_codec/encode_row_first_write", || {
        let mut cells = codec.erased_buffer();
        codec.encode_row(0, black_box(&data1), &mut cells).unwrap()
    });
    let mut base = codec.erased_buffer();
    codec.encode_row(0, &data1, &mut base).unwrap();
    bench("block_codec/encode_row_rewrite", || {
        let mut cells = base.clone();
        codec.encode_row(1, black_box(&data2), &mut cells).unwrap()
    });
    let mut cells = codec.erased_buffer();
    codec.encode_row(0, &data1, &mut cells).unwrap();
    bench("block_codec/decode_row", || {
        codec.decode_row(black_box(&cells)).unwrap()
    });
}

fn main() {
    symbol_encode();
    symbol_decode();
    block_codec();
}
