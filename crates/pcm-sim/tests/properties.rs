//! Randomized tests of the memory simulator's invariants: work
//! conservation, latency sanity, determinism, and address decoding.
//!
//! Deterministically seeded loops — same binary, same failures.

use pcm_rng::Rng;
use pcm_sim::{
    AddressDecoder, AddressMapping, DecodedAddr, MemConfig, MemOp, MemoryGeometry, MemorySystem,
    ServiceClass, TimingParams,
};

const CASES: u64 = 128;

/// A randomized little workload: (gap-cycles, addr-seed, is-read, fast).
fn accesses(rng: &mut Rng) -> Vec<(u8, u16, bool, bool)> {
    let len = rng.gen_range_usize(1, 80);
    (0..len)
        .map(|_| {
            (
                rng.next_u64() as u8,
                rng.next_u64() as u16,
                rng.gen_bool(0.5),
                rng.gen_bool(0.5),
            )
        })
        .collect()
}

fn op_class(is_read: bool, fast: bool) -> (MemOp, ServiceClass) {
    if is_read {
        (MemOp::Read, ServiceClass::Read)
    } else if fast {
        (MemOp::Write, ServiceClass::ResetOnlyWrite)
    } else {
        (MemOp::Write, ServiceClass::Write)
    }
}

/// Every enqueued demand access completes exactly once, whatever the
/// interleaving of arrivals, banks, and classes.
#[test]
fn work_is_conserved() {
    let mut rng = Rng::seed_from_u64(0xC095);
    for _ in 0..CASES {
        let ops = accesses(&mut rng);
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut submitted = 0u64;
        for (gap, addr_seed, is_read, fast) in ops {
            let now = mem.now() + u64::from(gap);
            mem.advance_to(now).unwrap();
            let addr = u64::from(addr_seed) * 64;
            let (op, class) = op_class(is_read, fast);
            if mem.enqueue(op, addr, class).is_ok() {
                submitted += 1;
            }
        }
        mem.drain();
        let s = mem.stats();
        assert_eq!(s.read_latency.count + s.write_latency.count, submitted);
    }
}

/// No completion can be faster than its service class's raw latency.
#[test]
fn latency_never_beats_service_time() {
    let mut rng = Rng::seed_from_u64(0x1A7E);
    let t = TimingParams::paper_pcm();
    for _ in 0..CASES {
        let ops = accesses(&mut rng);
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut all = Vec::new();
        for (gap, addr_seed, is_read, fast) in ops {
            let now = mem.now() + u64::from(gap);
            all.extend(mem.advance_to(now).unwrap());
            let addr = u64::from(addr_seed) * 64;
            let (op, class) = op_class(is_read, fast);
            let _ = mem.enqueue(op, addr, class);
        }
        all.extend(mem.drain());
        for c in all {
            let min = match c.class {
                ServiceClass::Read => t.read_cycles() + t.burst_cycles(),
                ServiceClass::Write => t.write_cycles(),
                ServiceClass::ResetOnlyWrite => t.reset_cycles(),
                ServiceClass::RankRefresh => 0,
            };
            assert!(
                c.latency() >= min,
                "{:?} finished in {} cycles, floor is {min}",
                c.class,
                c.latency()
            );
            assert!(c.start >= c.arrival, "service cannot start before arrival");
        }
    }
}

/// Identical inputs produce identical completion schedules.
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0xDE7E);
    let run = |ops: &[(u8, u16, bool, bool)]| {
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut out = Vec::new();
        for &(gap, addr_seed, is_read, fast) in ops {
            let now = mem.now() + u64::from(gap);
            out.extend(mem.advance_to(now).unwrap());
            let (op, class) = op_class(is_read, fast);
            let _ = mem.enqueue(op, u64::from(addr_seed) * 64, class);
        }
        out.extend(mem.drain());
        out
    };
    for _ in 0..CASES {
        let ops = accesses(&mut rng);
        assert_eq!(run(&ops), run(&ops));
    }
}

/// Address decode/encode is bijective on in-range addresses for every
/// mapping scheme.
#[test]
fn decode_encode_bijection() {
    let mut rng = Rng::seed_from_u64(0xB17E);
    for _ in 0..512 {
        let raw = rng.next_u64();
        let g = MemoryGeometry::tiny();
        for mapping in [
            AddressMapping::RowRankBankCol,
            AddressMapping::RowColRankBank,
            AddressMapping::RowBankRankCol,
            AddressMapping::RankBankRowCol,
        ] {
            let dec = AddressDecoder::new(g, mapping).unwrap();
            let addr = (raw % g.capacity_bytes()) & !(u64::from(g.access_bytes) - 1);
            let d = dec.decode(addr);
            assert!(d.rank < g.ranks);
            assert!(d.bank < g.banks_per_rank);
            assert!(d.row < g.rows_per_bank);
            assert!(d.column < g.columns_per_row());
            assert_eq!(dec.encode(d).unwrap(), addr, "{mapping:?}");
        }
    }
}

/// Distinct decoded tuples encode to distinct addresses (injectivity).
#[test]
fn encode_is_injective() {
    let mut rng = Rng::seed_from_u64(0x13EC);
    let g = MemoryGeometry::tiny();
    let dec = AddressDecoder::new(g, AddressMapping::default()).unwrap();
    for _ in 0..512 {
        let a = rng.gen_range_u32(0, 8);
        let b = rng.gen_range_u32(0, 8);
        let r1 = rng.gen_range_u32(0, 64);
        let r2 = rng.gen_range_u32(0, 64);
        let d1 = DecodedAddr {
            rank: a % g.ranks,
            bank: a % g.banks_per_rank,
            row: r1,
            column: 0,
        };
        let d2 = DecodedAddr {
            rank: b % g.ranks,
            bank: b % g.banks_per_rank,
            row: r2,
            column: 0,
        };
        let e1 = dec.encode(d1).unwrap();
        let e2 = dec.encode(d2).unwrap();
        assert_eq!(d1 == d2, e1 == e2);
    }
}

/// Energy accounting is monotone: more work never reduces the tally.
#[test]
fn energy_is_monotone() {
    let mut rng = Rng::seed_from_u64(0xE4E3);
    for _ in 0..CASES {
        let ops = accesses(&mut rng);
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut last = 0.0f64;
        for (gap, addr_seed, is_read, _) in ops {
            let now = mem.now() + u64::from(gap);
            mem.advance_to(now).unwrap();
            let (op, class) = if is_read {
                (MemOp::Read, ServiceClass::Read)
            } else {
                (MemOp::Write, ServiceClass::Write)
            };
            let _ = mem.enqueue(op, u64::from(addr_seed) * 64, class);
            let e = mem.stats().energy.total_pj();
            assert!(e >= last);
            last = e;
        }
    }
}
