//! Intra-run rank sharding: partition one simulation's rank space into
//! independent slices that run in parallel and merge bit-identically.
//!
//! A PCM channel's ranks share only the controller-side queues and the
//! transaction-id counter — the arrays, WOM budget tables, refresh
//! tables, wear counters, and functional state are all per-rank (or
//! per-bank). Slicing the rank space therefore partitions *all*
//! architectural state: a [`ShardPlan`] carves the configured geometry
//! into `shards` contiguous rank ranges, each backed by a private
//! [`EngineCore`](crate::engine::EngineCore) over a sub-geometry with
//! `ranks / shards` ranks, and a [`ShardSource`] filters the shared trace
//! down to each slice's records (re-encoded into the sub-geometry's
//! address space).
//!
//! The determinism contract is: running the *same N-shard decomposition*
//! on one thread or on N threads produces `{:#?}`-byte-identical merged
//! [`RunMetrics`](crate::RunMetrics) — each shard is a self-contained
//! deterministic simulation, and the merge
//! ([`RunMetrics::merge`](crate::RunMetrics::merge)) is a sum of
//! order-independent aggregates reduced in fixed shard order. A sharded
//! run is a *different model* than the unsharded run of the full
//! geometry (shards do not contend on shared queues, and per-rank
//! refresh staggering is computed from the sub-geometry), so sharding is
//! a throughput tool for endurance sweeps, not a drop-in replacement for
//! single-run latency studies; see `DESIGN.md` §12.

use crate::config::SystemConfig;
use crate::error::WomPcmError;
use pcm_sim::{AddressDecoder, DecodedAddr};
use pcm_trace::record::TraceRecord;
use pcm_trace::stream::{TraceSource, TraceStreamError};

/// A partition of a configuration's rank space into equal contiguous
/// slices.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    full: SystemConfig,
    shards: u32,
    ranks_per_shard: u32,
}

impl ShardPlan {
    /// Plans `shards` equal rank slices of `config`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when `shards` is zero or
    /// does not evenly divide the configured rank count (equal slices are
    /// what make the merged wear and latency aggregates comparable across
    /// shard counts).
    pub fn new(config: &SystemConfig, shards: u32) -> Result<Self, WomPcmError> {
        config.validate()?;
        let ranks = config.mem.geometry.ranks;
        if shards == 0 {
            return Err(WomPcmError::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if !ranks.is_multiple_of(shards) {
            return Err(WomPcmError::InvalidConfig(format!(
                "shard count {shards} must evenly divide the {ranks} configured ranks"
            )));
        }
        Ok(Self {
            full: config.clone(),
            shards,
            ranks_per_shard: ranks / shards,
        })
    }

    /// Number of slices in the plan.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Ranks owned by each slice.
    #[must_use]
    pub fn ranks_per_shard(&self) -> u32 {
        self.ranks_per_shard
    }

    /// The full (unsharded) configuration the plan was built from.
    #[must_use]
    pub fn full_config(&self) -> &SystemConfig {
        &self.full
    }

    /// First rank owned by slice `index`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when `index` is out of
    /// range.
    pub fn base_rank(&self, index: u32) -> Result<u32, WomPcmError> {
        if index >= self.shards {
            return Err(WomPcmError::InvalidConfig(format!(
                "shard index {index} out of range for {} shards",
                self.shards
            )));
        }
        Ok(index * self.ranks_per_shard)
    }

    /// The sub-configuration slice `index` runs under: identical to the
    /// full configuration except that the geometry spans only the slice's
    /// ranks.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when `index` is out of
    /// range.
    pub fn shard_config(&self, index: u32) -> Result<SystemConfig, WomPcmError> {
        self.base_rank(index)?;
        let mut config = self.full.clone();
        config.mem.geometry.ranks = self.ranks_per_shard;
        Ok(config)
    }
}

/// Filters a trace source down to one shard's rank range, re-encoding
/// each surviving record into the shard's sub-geometry address space.
///
/// Every record is decoded with the *full* geometry's decoder (including
/// its capacity wrap, so out-of-range capture addresses land on the same
/// rank they would in an unsharded run), kept when its rank falls in the
/// shard's range, and re-encoded with the shard decoder at
/// `rank - base_rank`. Record order and cycles are preserved, so each
/// shard sees a valid (non-decreasing) sub-trace of the original stream.
#[derive(Debug)]
pub struct ShardSource<S> {
    inner: S,
    full: AddressDecoder,
    shard: AddressDecoder,
    base_rank: u32,
    span: u32,
    buf: Vec<TraceRecord>,
}

impl<S: TraceSource> ShardSource<S> {
    /// Wraps `inner` as slice `index` of `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when `index` is out of
    /// range (the geometries themselves were validated by the plan).
    pub fn new(inner: S, plan: &ShardPlan, index: u32) -> Result<Self, WomPcmError> {
        let base_rank = plan.base_rank(index)?;
        let full_mem = &plan.full_config().mem;
        let shard_mem = plan.shard_config(index)?.mem;
        Ok(Self {
            inner,
            full: AddressDecoder::new(full_mem.geometry, full_mem.mapping)?,
            shard: AddressDecoder::new(shard_mem.geometry, shard_mem.mapping)?,
            base_rank,
            span: plan.ranks_per_shard(),
            buf: Vec::new(),
        })
    }

    /// The wrapped source.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSource> TraceSource for ShardSource<S> {
    fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceStreamError> {
        // A chunk of the inner stream may contain no records for this
        // shard; keep pulling until some survive the filter (chunks are
        // contractually non-empty) or the inner stream ends.
        loop {
            self.buf.clear();
            let Some(chunk) = self.inner.next_chunk()? else {
                return Ok(None);
            };
            for record in chunk {
                let d = self.full.decode(record.addr);
                if d.rank < self.base_rank || d.rank >= self.base_rank + self.span {
                    continue;
                }
                let local = DecodedAddr {
                    rank: d.rank - self.base_rank,
                    ..d
                };
                // Every field is within the sub-geometry by construction;
                // an encode failure means the two decoders disagree.
                let addr = self.shard.encode(local).map_err(|e| {
                    // womlint::allow(hotpath/alloc, reason = "cold error path: an encode failure is a decoder bug, never reached per record")
                    TraceStreamError::Profile(format!("shard re-encode failed: {e}"))
                })?;
                self.buf
                    .push(TraceRecord::new(record.cycle, addr, record.op));
            }
            if !self.buf.is_empty() {
                return Ok(Some(&self.buf));
            }
        }
    }

    fn reset(&mut self) -> Result<(), TraceStreamError> {
        self.inner.reset()
    }

    fn len_hint(&self) -> Option<u64> {
        // Only an upper bound is known without scanning; the trait wants
        // the exact count, so report nothing.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use pcm_trace::stream::SliceSource;
    use pcm_trace::synth::benchmarks;
    use pcm_trace::TraceOp;

    fn tiny_plan(shards: u32) -> ShardPlan {
        ShardPlan::new(&SystemConfig::tiny(Architecture::WomCode), shards).unwrap()
    }

    #[test]
    fn plan_validates_divisibility() {
        // tiny geometry has 2 ranks.
        assert!(ShardPlan::new(&SystemConfig::tiny(Architecture::WomCode), 0).is_err());
        assert!(ShardPlan::new(&SystemConfig::tiny(Architecture::WomCode), 3).is_err());
        let plan = tiny_plan(2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.ranks_per_shard(), 1);
        assert_eq!(plan.base_rank(0).unwrap(), 0);
        assert_eq!(plan.base_rank(1).unwrap(), 1);
        assert!(plan.base_rank(2).is_err());
        assert_eq!(plan.shard_config(1).unwrap().mem.geometry.ranks, 1);
        assert!(plan.shard_config(2).is_err());
    }

    #[test]
    fn shards_partition_every_record_exactly_once() {
        let plan = tiny_plan(2);
        let records = benchmarks::by_name("qsort").unwrap().generate(7, 4_000);
        let full = AddressDecoder::new(
            plan.full_config().mem.geometry,
            plan.full_config().mem.mapping,
        )
        .unwrap();
        let mut seen = 0u64;
        for index in 0..plan.shards() {
            let inner = SliceSource::with_chunk_records(&records, 64);
            let mut source = ShardSource::new(inner, &plan, index).unwrap();
            let shard_cfg = plan.shard_config(index).unwrap();
            let shard_dec =
                AddressDecoder::new(shard_cfg.mem.geometry, shard_cfg.mem.mapping).unwrap();
            let base = plan.base_rank(index).unwrap();
            let mut last_cycle = 0;
            while let Some(chunk) = source.next_chunk().unwrap() {
                assert!(!chunk.is_empty());
                for r in chunk {
                    let d = shard_dec.decode(r.addr);
                    assert!(d.rank < plan.ranks_per_shard());
                    assert!(r.cycle >= last_cycle, "order preserved");
                    last_cycle = r.cycle;
                    seen += 1;
                    let _ = base;
                }
            }
        }
        assert_eq!(seen, records.len() as u64, "no record lost or duplicated");
        // Cross-check the rank partition against the full decoder.
        let in_shard0 = records
            .iter()
            .filter(|r| full.decode(r.addr).rank == 0)
            .count();
        let inner = SliceSource::new(&records);
        let mut s0 = ShardSource::new(inner, &plan, 0).unwrap();
        let mut got = 0;
        while let Some(chunk) = s0.next_chunk().unwrap() {
            got += chunk.len();
        }
        assert_eq!(got, in_shard0);
    }

    #[test]
    fn shard_local_decode_matches_full_decode() {
        let plan = tiny_plan(2);
        let records = benchmarks::by_name("mad").unwrap().generate(3, 2_000);
        let full = AddressDecoder::new(
            plan.full_config().mem.geometry,
            plan.full_config().mem.mapping,
        )
        .unwrap();
        let shard_cfg = plan.shard_config(1).unwrap();
        let shard_dec = AddressDecoder::new(shard_cfg.mem.geometry, shard_cfg.mem.mapping).unwrap();
        let expected: Vec<_> = records
            .iter()
            .filter(|r| full.decode(r.addr).rank == 1)
            .map(|r| {
                let d = full.decode(r.addr);
                (r.cycle, d.bank, d.row, d.column, r.op)
            })
            .collect();
        let inner = SliceSource::new(&records);
        let mut source = ShardSource::new(inner, &plan, 1).unwrap();
        let mut got = Vec::new();
        while let Some(chunk) = source.next_chunk().unwrap() {
            for r in chunk {
                let d = shard_dec.decode(r.addr);
                assert_eq!(d.rank, 0, "shard-local rank");
                got.push((r.cycle, d.bank, d.row, d.column, r.op));
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn reset_replays_the_identical_sub_stream() {
        let plan = tiny_plan(2);
        let records = benchmarks::by_name("qsort").unwrap().generate(5, 1_000);
        let inner = SliceSource::new(&records);
        let mut source = ShardSource::new(inner, &plan, 0).unwrap();
        let drain = |s: &mut ShardSource<SliceSource<'_>>| {
            let mut out = Vec::new();
            while let Some(chunk) = s.next_chunk().unwrap() {
                out.extend_from_slice(chunk);
            }
            out
        };
        let first = drain(&mut source);
        source.reset().unwrap();
        assert_eq!(drain(&mut source), first);
        assert!(source.len_hint().is_none());
        let _ = (TraceOp::Read, source.into_inner());
    }
}
