//! Endurance analysis — the paper's stated future work (§6: "their
//! impact on the endurance of PCM is not explicitly addressed ... and
//! the problem remains open for future research").
//!
//! Reports, per architecture: total SET-bearing writes (the melt cycles
//! that age PCM cells), total RESET-only writes, the most-written row,
//! and the wear skew (coefficient of variation). Two opposing effects
//! appear: WOM coding removes SET pulses from most writes, but
//! PCM-refresh adds whole-row rewrites of its own, and WCPCM
//! concentrates all write traffic on the small per-rank cache arrays.
//!
//! Usage: `endurance [records] [seed] [--workload NAME] [--threads N]
//! [--shards N] [--resume PATH [--snapshot-every N]]
//! [--observe PATH [--epoch-cycles N]]`
//! (defaults: 30000, 2014, 464.h264ref, available parallelism). The
//! workload may be any paper-suite or datacenter profile (`womsim list`
//! names them); the trace is streamed, never materialized, so record
//! counts far beyond memory are fine. `--shards N` splits each case's
//! rank space across the worker pool; `--resume PATH --snapshot-every N`
//! makes the run restartable (per-case, per-shard `WOMSNAP` files are
//! derived from PATH) — re-running the same command line after an
//! interruption picks up from the last snapshot and finishes with
//! byte-identical metrics.

use pcm_trace::stream::{TraceProfile, TraceSpec};
use wom_pcm::{Architecture, SystemBuilder};
use wom_pcm_bench::sharded::{run_configs_spec, RunOptions};
use wom_pcm_bench::{cli, run_configs_parallel, write_observed_jsonl, ObservedSeries};

const USAGE: &str = "endurance [records] [seed] [--workload NAME] [--threads N] [--shards N] \
                     [--resume PATH [--snapshot-every N]] [--observe PATH [--epoch-cycles N]]";

fn main() {
    let mut cli = cli::Parser::from_env(USAGE);
    let threads = cli.threads();
    let shards = cli.shards();
    let snapshot = cli.snapshot();
    let observe = cli.observe();
    let workload = cli
        .value("--workload")
        .unwrap_or_else(|| "464.h264ref".into());
    let records: usize = cli.positional("records", 30_000);
    let seed: u64 = cli.positional("seed", 2014);
    cli.finish();

    let Some(profile) = TraceProfile::by_name(&workload) else {
        eprintln!("error: unknown workload '{workload}' (see `womsim list`)");
        std::process::exit(2);
    };
    let spec = TraceSpec::synth(profile.clone(), seed, records as u64);
    println!("workload: {} ({records} records)\n", profile.name());
    println!(
        "{:23}{:>12}{:>13}{:>11}{:>10}{:>14}",
        "architecture", "SET writes", "RESET-only", "max/row", "wear CV", "cache max/row"
    );
    const CASES: [(&str, Architecture, Option<u64>); 5] = [
        ("PCM w/o WOM-code", Architecture::Baseline, None),
        ("WOM-code PCM", Architecture::WomCode, None),
        ("PCM-refresh", Architecture::WomCodeRefresh, None),
        ("WCPCM", Architecture::Wcpcm, None),
        (
            "PCM-refresh + start-gap",
            Architecture::WomCodeRefresh,
            Some(64),
        ),
    ];
    let jobs: Vec<_> = CASES
        .iter()
        .map(|&(_, arch, leveling)| {
            let mut b = SystemBuilder::new(arch).rows_per_bank(4096);
            if let Some(interval) = leveling {
                b = b.wear_leveling(interval);
            }
            (b.into_config(), spec.clone())
        })
        .collect();
    // Short per-case slugs key the derived snapshot file names.
    const SLUGS: [&str; 5] = ["baseline", "wom", "refresh", "wcpcm", "refresh-sg"];
    let labels: Vec<String> = SLUGS.map(String::from).into();
    let opts = RunOptions {
        shards,
        threads,
        snapshot,
        epoch_cycles: observe.as_ref().map(|o| o.epoch_cycles),
    };
    let runs = run_configs_spec(&jobs, &labels, &opts).expect("endurance cells run");
    let metrics: Vec<_> = if let Some(obs) = &observe {
        let mut metrics = Vec::new();
        let mut observed = Vec::new();
        for ((label, arch, _), (m, series)) in CASES.iter().zip(runs) {
            metrics.push(m);
            observed.push(ObservedSeries {
                arch: *arch,
                workload: format!("{workload}/{label}"),
                banks_per_rank: 32,
                series: series.expect("observation was requested"),
            });
        }
        write_observed_jsonl(&obs.path, &observed).expect("writing the epoch JSONL");
        eprintln!("wrote {} epoch series to {}", observed.len(), obs.path);
        metrics
    } else {
        runs.into_iter().map(|(m, _)| m).collect()
    };
    for ((label, _, _), m) in CASES.iter().zip(&metrics) {
        let w = m.wear_main;
        let cache_max = m.wear_cache.map_or("-".to_string(), |c| c.max.to_string());
        println!(
            "{:23}{:>12}{:>13}{:>11}{:>10.2}{:>14}",
            label,
            m.slow_writes + m.refreshes_completed + m.victim_writebacks + m.leveling_copies,
            m.fast_writes,
            w.max,
            w.cv,
            cache_max
        );
    }
    println!(
        "\nSET writes age cells fastest; WOM architectures trade them for RESET-only\n\
         writes. WCPCM shifts wear onto the cache arrays (last column) - a wear-\n\
         leveling target the paper leaves to future work. At trace scale each\n\
         bank sees too few writes for start-gap to rotate; the hot-row\n\
         microbenchmark below shows its effect over a longer horizon."
    );

    // Hot-row microbenchmark: hammer one line so gap moves actually occur.
    use pcm_trace::{TraceOp, TraceRecord};
    let hot: TraceSpec = (0..30_000u64)
        .map(|i| TraceRecord::new(i * 300, 0, TraceOp::Write))
        .collect::<Vec<TraceRecord>>()
        .into();
    println!(
        "\nhot-row microbenchmark (30k writes to one line, 64-row banks so the\n\
         gap completes rotations), WOM-code PCM:"
    );
    println!(
        "{:>22}{:>11}{:>10}{:>14}",
        "start-gap interval", "max/row", "wear CV", "copy overhead"
    );
    const INTERVALS: [Option<u64>; 4] = [None, Some(256), Some(64), Some(16)];
    let hot_jobs: Vec<_> = INTERVALS
        .iter()
        .map(|&leveling| {
            let mut b = SystemBuilder::new(Architecture::WomCode).rows_per_bank(64);
            if let Some(interval) = leveling {
                b = b.wear_leveling(interval);
            }
            (b.into_config(), hot.clone())
        })
        .collect();
    let hot_metrics = run_configs_parallel(&hot_jobs, threads).expect("hot-row cells run");
    for (leveling, m) in INTERVALS.iter().zip(&hot_metrics) {
        println!(
            "{:>22}{:>11}{:>10.2}{:>13.1}%",
            leveling.map_or("off".to_string(), |i| i.to_string()),
            m.wear_main.max,
            m.wear_main.cv,
            m.leveling_copies as f64 / 30_000.0 * 100.0,
        );
    }
    println!("smaller intervals rotate faster: lower peak wear, more copy traffic.");
}
