//! The four PCM architectures evaluated in the paper (Fig. 5).

use core::fmt;

/// Which memory organization provisions the WOM code's extra bits (§3.1).
///
/// Both organizations provide identical steady-state performance (the row
/// buffer sees whole encoded rows either way); they differ in controller
/// complexity and flexibility, which [`crate::wide_column::WideColumn`]
/// and [`crate::hidden_page::HiddenPageTable`] model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Organization {
    /// Fixed wide columns (1.5·Z bits for the ⟨2²⟩²/3 code).
    #[default]
    WideColumn,
    /// Controller-managed hidden pages (dynamic code selection).
    HiddenPage,
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WideColumn => f.write_str("wide-column"),
            Self::HiddenPage => f.write_str("hidden-page"),
        }
    }
}

/// One of the paper's four evaluated architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Conventional PCM: every write pays full (SET-gated) latency. The
    /// normalization baseline of Fig. 5.
    Baseline,
    /// WOM-code PCM (§3.1): rewrites within the budget are RESET-only.
    WomCode,
    /// WOM-code PCM with PCM-refresh (§3.2): exhausted rows are
    /// re-initialized during idle rank cycles.
    WomCodeRefresh,
    /// WOM-code cached PCM (§4): a per-rank WOM-cache in front of
    /// conventional PCM main memory.
    Wcpcm,
}

impl Architecture {
    /// The four architectures in the paper's Fig. 5 legend order.
    #[must_use]
    pub fn all_paper() -> [Self; 4] {
        [
            Self::Baseline,
            Self::WomCode,
            Self::WomCodeRefresh,
            Self::Wcpcm,
        ]
    }

    /// The paper's legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "PCM w/o WOM-code",
            Self::WomCode => "WOM-code PCM",
            Self::WomCodeRefresh => "PCM-refresh",
            Self::Wcpcm => "WCPCM",
        }
    }

    /// Filesystem- and JSON-safe identifier (the display labels above
    /// contain spaces and slashes); used for snapshot file names and
    /// benchmark case keys.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::WomCode => "wom-code",
            Self::WomCodeRefresh => "wom-code-refresh",
            Self::Wcpcm => "wcpcm",
        }
    }

    /// Whether this architecture WOM-encodes main-memory rows.
    #[must_use]
    pub fn encodes_main_memory(self) -> bool {
        matches!(self, Self::WomCode | Self::WomCodeRefresh)
    }

    /// Whether a PCM-refresh engine runs (on main memory or the WOM-cache).
    #[must_use]
    pub fn uses_refresh(self) -> bool {
        matches!(self, Self::WomCodeRefresh | Self::Wcpcm)
    }

    /// Whether a per-rank WOM-cache fronts main memory.
    #[must_use]
    pub fn uses_cache(self) -> bool {
        matches!(self, Self::Wcpcm)
    }

    /// PCM cell overhead of the architecture for a code with the given
    /// `expansion`, at `banks_per_rank` banks (§4's comparison): whole-
    /// array encoding costs `expansion − 1`; WCPCM costs only
    /// `expansion / N_bank`; the baseline costs nothing.
    #[must_use]
    pub fn cell_overhead(self, expansion: f64, banks_per_rank: u32) -> f64 {
        match self {
            Self::Baseline => 0.0,
            Self::WomCode | Self::WomCodeRefresh => expansion - 1.0,
            Self::Wcpcm => expansion / f64::from(banks_per_rank),
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_and_labels() {
        let all = Architecture::all_paper();
        assert_eq!(all[0].label(), "PCM w/o WOM-code");
        assert_eq!(all[3].label(), "WCPCM");
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn feature_flags() {
        assert!(!Architecture::Baseline.encodes_main_memory());
        assert!(!Architecture::Baseline.uses_refresh());
        assert!(Architecture::WomCode.encodes_main_memory());
        assert!(!Architecture::WomCode.uses_refresh());
        assert!(Architecture::WomCodeRefresh.uses_refresh());
        assert!(Architecture::Wcpcm.uses_cache());
        assert!(Architecture::Wcpcm.uses_refresh());
        assert!(!Architecture::Wcpcm.encodes_main_memory());
    }

    #[test]
    fn overheads_match_paper() {
        // 50% for whole-array WOM coding; 4.7% for WCPCM at 32 banks/rank.
        assert!((Architecture::WomCode.cell_overhead(1.5, 32) - 0.5).abs() < 1e-12);
        let wcpcm = Architecture::Wcpcm.cell_overhead(1.5, 32);
        assert!(wcpcm > 0.046 && wcpcm < 0.047);
        assert_eq!(Architecture::Baseline.cell_overhead(1.5, 32), 0.0);
    }

    #[test]
    fn organizations_display() {
        assert_eq!(Organization::WideColumn.to_string(), "wide-column");
        assert_eq!(Organization::HiddenPage.to_string(), "hidden-page");
    }
}
