//! The wide-column WOM-code PCM organization (§3.1, Fig. 2).
//!
//! Every column is physically widened from `Z` to `expansion · Z` bits so
//! an encoded symbol is stored in consecutive bits of the same row. The
//! organization is *fixed*: the array is manufactured for one expansion
//! factor, and no code with a larger expansion can ever be used — but the
//! memory controller stays simple and fast (no page table, no hidden-page
//! management).

use crate::error::WomPcmError;
use pcm_sim::MemoryGeometry;
use wom_code::WomCode;

/// A wide-column array description: fixed column expansion.
///
/// ```
/// use wom_pcm::wide_column::WideColumn;
/// use pcm_sim::MemoryGeometry;
/// use wom_code::{Inverted, Rs23Code};
///
/// # fn main() -> Result<(), wom_pcm::WomPcmError> {
/// // An array manufactured for the <2^2>^2/3 code: columns are 1.5x wide.
/// let org = WideColumn::new(MemoryGeometry::paper_16gib(), 1.5)?;
/// assert!(org.supports(&Inverted::new(Rs23Code::new())));
/// assert_eq!(org.cell_overhead(), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideColumn {
    geometry: MemoryGeometry,
    expansion: f64,
}

impl WideColumn {
    /// Describes an array whose columns are `expansion ≥ 1` times the data
    /// width (1.5 for the ⟨2²⟩²/3 code).
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] if `expansion < 1`.
    pub fn new(geometry: MemoryGeometry, expansion: f64) -> Result<Self, WomPcmError> {
        if expansion.is_nan() || expansion < 1.0 {
            return Err(WomPcmError::InvalidConfig(format!(
                "column expansion must be at least 1, got {expansion}"
            )));
        }
        Ok(Self {
            geometry,
            expansion,
        })
    }

    /// The logical (data) geometry of the array.
    #[must_use]
    pub fn geometry(&self) -> &MemoryGeometry {
        &self.geometry
    }

    /// The manufactured column expansion factor.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        self.expansion
    }

    /// Whether `code` fits this array: the paper's constraint that a fixed
    /// wide-column array "cannot accommodate any WOM-code with more than
    /// [its manufactured] memory overhead".
    #[must_use]
    pub fn supports<C: WomCode + ?Sized>(&self, code: &C) -> bool {
        code.expansion() <= self.expansion + 1e-12
    }

    /// Physical bits per row (data row bits × expansion).
    #[must_use]
    pub fn physical_row_bits(&self) -> u64 {
        (f64::from(self.geometry.row_bytes) * 8.0 * self.expansion).ceil() as u64
    }

    /// Extra PCM cells relative to an unencoded array
    /// (`expansion − 1`, i.e. 0.5 = 50% for the ⟨2²⟩²/3 code).
    #[must_use]
    pub fn cell_overhead(&self) -> f64 {
        self.expansion - 1.0
    }

    /// Addressable (visible) capacity in bytes — unchanged by widening:
    /// the extra bits hold code redundancy, not data.
    #[must_use]
    pub fn visible_capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wom_code::{IdentityCode, Inverted, Orientation, Rs23Code, TabularWomCode};

    fn org() -> WideColumn {
        WideColumn::new(MemoryGeometry::tiny(), 1.5).unwrap()
    }

    #[test]
    fn supports_codes_up_to_the_manufactured_expansion() {
        let org = org();
        assert!(org.supports(&Rs23Code::new()));
        assert!(org.supports(&Inverted::new(Rs23Code::new())));
        assert!(org.supports(&IdentityCode::new(8).unwrap()), "1.0 <= 1.5");
        // A 1-bit-in-2-wits code has expansion 2.0 > 1.5: rejected.
        let wide = TabularWomCode::new(1, 2, Orientation::SetOnly, vec![vec![0b00, 0b01]]).unwrap();
        assert!(!org.supports(&wide));
    }

    #[test]
    fn physical_row_is_widened() {
        let org = org();
        assert_eq!(org.physical_row_bits(), 256 * 8 * 3 / 2);
        assert_eq!(
            org.visible_capacity_bytes(),
            MemoryGeometry::tiny().capacity_bytes()
        );
        assert!((org.cell_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_sub_unit_expansion() {
        assert!(WideColumn::new(MemoryGeometry::tiny(), 0.9).is_err());
        assert!(WideColumn::new(MemoryGeometry::tiny(), f64::NAN).is_err());
    }
}
