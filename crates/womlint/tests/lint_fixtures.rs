//! End-to-end tests over the seeded fixture tree in `tests/fixtures/`
//! (one violation per rule, each on a known line) and the clean tree in
//! `tests/fixtures_clean/` — both through the library API and through
//! the `womlint` binary's exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;
use womlint::config::{parse_baseline, Config};
use womlint::{
    run, Report, RULE_BANNED_PATH, RULE_BANNED_TYPE, RULE_HOTPATH_ALLOC, RULE_PANIC_RATCHET,
    RULE_SUPPRESSION_REASON, RULE_SUPPRESSION_UNKNOWN,
};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

fn lint(root: &Path) -> Report {
    let cfg = Config::load(root).unwrap();
    let src = std::fs::read_to_string(root.join(&cfg.baseline_file)).unwrap();
    let baseline = parse_baseline(&src).unwrap();
    run(root, &cfg, Some(&baseline)).unwrap()
}

#[test]
fn seeded_violations_carry_exact_rule_ids_and_lines() {
    let report = lint(&fixture_root("fixtures"));
    let got: Vec<(String, String, u32)> = report
        .violations
        .iter()
        .map(|d| (d.rule.clone(), d.file.clone(), d.line))
        .collect();
    let lib = "demo/src/lib.rs".to_string();
    let baseline = "womlint-baseline.toml".to_string();
    let expected = vec![
        (RULE_BANNED_TYPE.to_string(), lib.clone(), 4),
        (RULE_BANNED_PATH.to_string(), lib.clone(), 7),
        (RULE_BANNED_PATH.to_string(), lib.clone(), 8),
        (RULE_HOTPATH_ALLOC.to_string(), lib.clone(), 13),
        (RULE_SUPPRESSION_REASON.to_string(), lib.clone(), 25),
        // Two `HashMap` occurrences on the one unsuppressed line.
        (RULE_BANNED_TYPE.to_string(), lib.clone(), 26),
        (RULE_BANNED_TYPE.to_string(), lib.clone(), 26),
        (RULE_SUPPRESSION_UNKNOWN.to_string(), lib, 30),
        // Ratchet regressions point at the baseline file.
        (RULE_PANIC_RATCHET.to_string(), baseline.clone(), 1),
        (RULE_PANIC_RATCHET.to_string(), baseline, 1),
    ];
    assert_eq!(got, expected);
}

#[test]
fn ratchet_regressions_name_each_category() {
    let report = lint(&fixture_root("fixtures"));
    let ratchet: Vec<&str> = report
        .violations
        .iter()
        .filter(|d| d.rule == RULE_PANIC_RATCHET)
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(ratchet.len(), 2);
    assert!(ratchet.iter().any(|m| m.contains("`unwrap`")));
    assert!(ratchet.iter().any(|m| m.contains("`index`")));
    let demo = &report.inventory["demo"];
    assert_eq!(
        (demo.unwrap, demo.expect, demo.panic, demo.index),
        (1, 0, 0, 1)
    );
}

#[test]
fn well_formed_suppressions_silence_the_diagnostic() {
    let report = lint(&fixture_root("fixtures"));
    // Line 19's two HashMap hits are justified with a reason: suppressed,
    // not violations.
    assert!(!report.violations.iter().any(|d| d.line == 19));
    let silenced: Vec<u32> = report
        .suppressed
        .iter()
        .filter(|d| d.rule == RULE_BANNED_TYPE)
        .map(|d| d.line)
        .collect();
    assert_eq!(silenced, vec![19, 19]);
}

#[test]
fn reasonless_suppression_is_flagged_and_does_not_suppress() {
    let report = lint(&fixture_root("fixtures"));
    assert!(report
        .violations
        .iter()
        .any(|d| d.rule == RULE_SUPPRESSION_REASON && d.line == 25));
    // The banned type on the covered line still violates.
    assert!(report
        .violations
        .iter()
        .any(|d| d.rule == RULE_BANNED_TYPE && d.line == 26));
}

#[test]
fn clean_tree_reports_nothing() {
    let report = lint(&fixture_root("fixtures_clean"));
    assert!(report.is_clean(), "unexpected: {:?}", report.violations);
    assert!(report.suppressed.is_empty());
    assert_eq!(report.inventory["demo"].total(), 0);
}

#[test]
fn binary_exits_nonzero_on_the_seeded_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_womlint"))
        .args(["--root"])
        .arg(fixture_root("fixtures"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        RULE_BANNED_TYPE,
        RULE_BANNED_PATH,
        RULE_HOTPATH_ALLOC,
        RULE_PANIC_RATCHET,
        RULE_SUPPRESSION_REASON,
        RULE_SUPPRESSION_UNKNOWN,
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn binary_exits_zero_on_the_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_womlint"))
        .args(["--root"])
        .arg(fixture_root("fixtures_clean"))
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_emits_json_for_ci() {
    let out = Command::new(env!("CARGO_BIN_EXE_womlint"))
        .args(["--root"])
        .arg(fixture_root("fixtures"))
        .args(["--json", "-"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in ["\"violations\"", "\"panic_inventory\"", "\"summary\""] {
        assert!(stdout.contains(key), "missing {key} in:\n{stdout}");
    }
    assert!(stdout.contains(RULE_BANNED_TYPE));
}
