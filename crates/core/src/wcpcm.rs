//! WCPCM: the per-rank WOM-code PCM write cache (§4, Fig. 4).
//!
//! Each rank carries a WOM-cache array with the same number of rows as one
//! bank. A cache row `r` can hold row `r` of any one of the rank's banks:
//! the selector field stores the bank address as tag `T` (log₂ N_bank
//! bits) plus one valid bit `V` — 6 bits/row at 32 banks/rank. The cache
//! is built as a wide-column WOM-code array with PCM-refresh, so cached
//! writes complete at RESET speed, while the memory overhead is only
//! `expansion / N_bank` (≈ 4.7% for the ⟨2²⟩²/3 code at 32 banks/rank)
//! because only one bank's worth of rows per rank is duplicated.

use crate::wom_state::{WomStateTable, WriteKind};
use pcm_sim::{SnapError, SnapReader, SnapWriter};

/// What happened on a WOM-cache write lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheWriteOutcome {
    /// Hit: the entry was invalid or its tag matched — the data is
    /// programmed into the cache row in place.
    Hit {
        /// Latency class of the in-cache WOM write.
        kind: WriteKind,
    },
    /// Miss: a valid entry for another bank occupies the row. The victim
    /// row must be written back to PCM main memory, then the new data is
    /// programmed and the tag updated.
    Miss {
        /// Bank whose data is evicted (written back to main memory).
        victim_bank: u32,
        /// Latency class of the in-cache WOM write for the *new* data.
        kind: WriteKind,
    },
}

impl CacheWriteOutcome {
    /// True for [`CacheWriteOutcome::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, Self::Hit { .. })
    }

    /// The latency class of the in-cache write.
    #[must_use]
    pub fn kind(self) -> WriteKind {
        match self {
            Self::Hit { kind } | Self::Miss { kind, .. } => kind,
        }
    }
}

/// Hit/miss counters of a [`WomCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Write lookups that hit (invalid entry or tag match).
    pub write_hits: u64,
    /// Write lookups that evicted a victim.
    pub write_misses: u64,
    /// Read probes that hit.
    pub read_hits: u64,
    /// Read probes that missed (served by main memory).
    pub read_misses: u64,
}

impl CacheStats {
    /// Write hit rate in `[0, 1]` (1.0 when no writes were seen).
    #[must_use]
    pub fn write_hit_rate(&self) -> f64 {
        let total = self.write_hits + self.write_misses;
        if total == 0 {
            1.0
        } else {
            self.write_hits as f64 / total as f64
        }
    }

    /// Read hit rate in `[0, 1]` (0.0 when no reads were seen).
    #[must_use]
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }

    /// Combined demand hit rate over all lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.write_hits + self.read_hits;
        let total = hits + self.write_misses + self.read_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Merges another cache's counters into this one (commutative and
    /// associative — used for shard reduction).
    pub fn merge(&mut self, other: &Self) {
        self.write_hits += other.write_hits;
        self.write_misses += other.write_misses;
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
    }

    /// Serializes the counters for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.write_hits);
        w.put_u64(self.write_misses);
        w.put_u64(self.read_hits);
        w.put_u64(self.read_misses);
    }

    /// Decodes counters written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            write_hits: r.take_u64()?,
            write_misses: r.take_u64()?,
            read_hits: r.take_u64()?,
            read_misses: r.take_u64()?,
        })
    }
}

/// Tag/valid/WOM-state bookkeeping for every rank's WOM-cache.
///
/// ```
/// use wom_pcm::wcpcm::WomCache;
///
/// let mut cache = WomCache::new(/*ranks*/ 2, /*banks_per_rank*/ 4,
///                               /*rows*/ 64, /*columns*/ 16,
///                               /*rewrite_limit*/ 2);
/// // First write to row 3, column 0 of bank 1: entry invalid -> hit.
/// let w = cache.write(0, 1, 3, 0);
/// assert!(w.is_hit());
/// // A read of what we just cached hits; another bank's row 3 misses.
/// assert!(cache.read(0, 1, 3));
/// assert!(!cache.read(0, 2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct WomCache {
    ranks: u32,
    banks_per_rank: u32,
    rows: u32,
    /// `Some(bank)` when the entry is valid; indexed `rank * rows + row`.
    tags: Vec<Option<u32>>,
    /// WOM write budget of each cache row (flat id `rank * rows + row`).
    wom: WomStateTable,
    stats: CacheStats,
}

impl WomCache {
    /// Creates an empty cache: one array per rank, `rows` rows of
    /// `columns` columns each, caching among `banks_per_rank` banks, with
    /// WOM rewrite limit `rewrite_limit`.
    ///
    /// The cache starts in the erased WOM state: it is a small,
    /// controller-managed array kept fresh by PCM-refresh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the rewrite limit is zero.
    #[must_use]
    pub fn new(
        ranks: u32,
        banks_per_rank: u32,
        rows: u32,
        columns: u32,
        rewrite_limit: u32,
    ) -> Self {
        assert!(
            ranks > 0 && banks_per_rank > 0 && rows > 0,
            "cache dimensions must be positive"
        );
        Self {
            ranks,
            banks_per_rank,
            rows,
            tags: vec![None; (ranks * rows) as usize],
            wom: WomStateTable::new(rewrite_limit, columns),
            stats: CacheStats::default(),
        }
    }

    /// Tag width in bits (`log2(banks_per_rank)`), plus one valid bit, is
    /// the selector overhead per row — 6 bits at 32 banks/rank.
    #[must_use]
    pub fn selector_bits(&self) -> u32 {
        self.banks_per_rank.next_power_of_two().trailing_zeros() + 1
    }

    /// Hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn index(&self, rank: u32, row: u32) -> usize {
        assert!(rank < self.ranks, "rank {rank} out of range");
        assert!(row < self.rows, "row {row} out of range");
        (rank * self.rows + row) as usize
    }

    /// Flat WOM-state id of a cache row.
    fn wom_id(&self, rank: u32, row: u32) -> u64 {
        (u64::from(rank) << 32) | u64::from(row)
    }

    /// Performs the §4 write protocol for a demand write to column
    /// `column` of `(rank, bank, row)` and returns what the controller
    /// must do.
    ///
    /// # Panics
    ///
    /// Panics if `rank`, `bank`, `row`, or `column` are out of range.
    pub fn write(&mut self, rank: u32, bank: u32, row: u32, column: u32) -> CacheWriteOutcome {
        assert!(bank < self.banks_per_rank, "bank {bank} out of range");
        let idx = self.index(rank, row);
        let kind = self.wom.classify_write(self.wom_id(rank, row), column);
        match self.tags[idx] {
            Some(victim_bank) if victim_bank != bank => {
                self.tags[idx] = Some(bank);
                self.stats.write_misses += 1;
                CacheWriteOutcome::Miss { victim_bank, kind }
            }
            _ => {
                self.tags[idx] = Some(bank);
                self.stats.write_hits += 1;
                CacheWriteOutcome::Hit { kind }
            }
        }
    }

    /// The bank whose data currently occupies a cache row, if the entry
    /// is valid — without touching hit/miss statistics.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `row` are out of range.
    #[must_use]
    pub fn peek_tag(&self, rank: u32, row: u32) -> Option<u32> {
        self.tags[self.index(rank, row)]
    }

    /// Read probe: true when `(rank, bank, row)` is cached. Content and
    /// tags are never modified by reads (§4's read protocol).
    ///
    /// # Panics
    ///
    /// Panics if `rank`, `bank`, or `row` are out of range.
    pub fn read(&mut self, rank: u32, bank: u32, row: u32) -> bool {
        assert!(bank < self.banks_per_rank, "bank {bank} out of range");
        let idx = self.index(rank, row);
        let hit = self.tags[idx] == Some(bank);
        if hit {
            self.stats.read_hits += 1;
        } else {
            self.stats.read_misses += 1;
        }
        hit
    }

    /// Whether any column of a cache row has exhausted its WOM budget
    /// (PCM-refresh candidate).
    #[must_use]
    pub fn row_at_limit(&self, rank: u32, row: u32) -> bool {
        self.wom.row_exhausted(self.wom_id(rank, row))
    }

    /// Marks a cache row as refreshed back to the erased WOM state
    /// (discarding its data, e.g. after an invalidation).
    pub fn mark_refreshed(&mut self, rank: u32, row: u32) {
        let id = self.wom_id(rank, row);
        self.wom.mark_refreshed(id);
    }

    /// Marks a cache row as PCM-refreshed: erased and immediately
    /// rewritten with its data in the first-write pattern, so exactly one
    /// write generation is consumed ("the 'refreshed' PCM row can be
    /// immediately written by the pattern of the second write", §3.2).
    pub fn mark_pcm_refreshed(&mut self, rank: u32, row: u32) {
        let id = self.wom_id(rank, row);
        self.wom.mark_copied(id);
    }

    /// Flushes a cache row: invalidates the entry (returning the bank
    /// whose data must be written back to main memory, if any) and erases
    /// the wits to the full-budget state. Unlike main-memory rows, a write
    /// cache may refresh by eviction — its data always has a home in PCM
    /// main memory.
    pub fn flush(&mut self, rank: u32, row: u32) -> Option<u32> {
        let idx = self.index(rank, row);
        let victim = self.tags[idx].take();
        self.wom.mark_refreshed(self.wom_id(rank, row));
        victim
    }

    /// Number of valid entries across all ranks.
    #[must_use]
    pub fn valid_entries(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    /// Serializes the cache for snapshot/restore.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u32(self.ranks);
        w.put_u32(self.banks_per_rank);
        w.put_u32(self.rows);
        for tag in &self.tags {
            match tag {
                None => w.put_bool(false),
                Some(bank) => {
                    w.put_bool(true);
                    w.put_u32(*bank);
                }
            }
        }
        self.wom.save_state(w);
        self.stats.save_state(w);
    }

    /// Decodes a cache written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates payload truncation; [`SnapError::Corrupt`] for
    /// zero-sized dimensions or out-of-range tags.
    pub fn load_state(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ranks = r.take_u32()?;
        let banks_per_rank = r.take_u32()?;
        let rows = r.take_u32()?;
        if ranks == 0 || banks_per_rank == 0 || rows == 0 {
            return Err(SnapError::Corrupt("cache dimensions"));
        }
        let entries = ranks as usize * rows as usize;
        let mut tags = Vec::with_capacity(entries);
        for _ in 0..entries {
            let tag = if r.take_bool()? {
                let bank = r.take_u32()?;
                if bank >= banks_per_rank {
                    return Err(SnapError::Corrupt("cache tag out of range"));
                }
                Some(bank)
            } else {
                None
            };
            tags.push(tag);
        }
        Ok(Self {
            ranks,
            banks_per_rank,
            rows,
            tags,
            wom: WomStateTable::load_state(r)?,
            stats: CacheStats::load_state(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> WomCache {
        WomCache::new(2, 4, 16, 8, 2)
    }

    #[test]
    fn invalid_entries_hit_without_victims() {
        let mut c = cache();
        match c.write(0, 3, 7, 0) {
            CacheWriteOutcome::Hit { kind } => assert!(kind.is_fast()),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.valid_entries(), 1);
        assert_eq!(c.stats().write_hits, 1);
    }

    #[test]
    fn same_bank_rewrites_hit_until_budget_exhausts() {
        let mut c = cache();
        assert!(c.write(0, 1, 0, 0).kind().is_fast()); // gen 0
        assert!(c.write(0, 1, 0, 0).kind().is_fast()); // gen 1
        assert!(
            !c.write(0, 1, 0, 0).kind().is_fast(),
            "third write is the alpha-write"
        );
        assert!(
            c.write(0, 1, 0, 0).kind().is_fast(),
            "after alpha the budget restarts"
        );
        // A different column of the same cache row has its own budget.
        assert!(c.write(0, 1, 0, 5).kind().is_fast());
    }

    #[test]
    fn conflicting_bank_evicts_victim() {
        let mut c = cache();
        c.write(0, 1, 5, 0);
        match c.write(0, 2, 5, 0) {
            CacheWriteOutcome::Miss { victim_bank, .. } => assert_eq!(victim_bank, 1),
            other => panic!("expected miss, got {other:?}"),
        }
        // The new owner now hits on read.
        assert!(c.read(0, 2, 5));
        assert!(!c.read(0, 1, 5));
        assert_eq!(c.stats().write_misses, 1);
    }

    #[test]
    fn ranks_are_independent() {
        let mut c = cache();
        c.write(0, 1, 5, 0);
        match c.write(1, 2, 5, 0) {
            CacheWriteOutcome::Hit { .. } => {}
            other => panic!("different rank must not conflict, got {other:?}"),
        }
    }

    #[test]
    fn reads_never_allocate() {
        let mut c = cache();
        assert!(!c.read(0, 0, 0));
        assert_eq!(c.valid_entries(), 0);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn hit_rates() {
        let mut c = cache();
        c.write(0, 0, 0, 0); // hit (invalid)
        c.write(0, 1, 0, 0); // miss (evicts bank 0)
        c.read(0, 1, 0); // hit
        c.read(0, 0, 0); // miss
        assert!((c.stats().write_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.stats().read_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats::default().write_hit_rate(), 1.0);
    }

    #[test]
    fn selector_width_matches_paper() {
        // 32 banks/rank -> 5 tag bits + 1 valid bit = 6 bits/row (§4).
        let c = WomCache::new(1, 32, 8, 16, 2);
        assert_eq!(c.selector_bits(), 6);
    }

    #[test]
    fn refresh_restores_cache_row_budget() {
        let mut c = cache();
        c.write(0, 0, 3, 2);
        c.write(0, 0, 3, 2);
        assert!(c.row_at_limit(0, 3));
        c.mark_refreshed(0, 3);
        assert!(!c.row_at_limit(0, 3));
        assert!(c.write(0, 0, 3, 2).kind().is_fast());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_is_rejected() {
        let mut c = cache();
        c.write(0, 99, 0, 0);
    }
}
