//! `snapshot/field-coverage` and `merge/field-coverage`: field
//! exhaustiveness proofs for the `WOMSNAP` codec and for shard-merge.
//!
//! Discovery is automatic — no config list to keep in sync:
//!
//! * a type participates in the snap codec when it has an inherent
//!   method `save_state` taking a `SnapWriter`, or
//!   `load_state`/`restore_state` taking a `SnapReader`;
//! * a type participates in merge when it has a method named `merge` or
//!   `merge_disjoint`.
//!
//! For every such type with a named-field struct definition in the same
//! crate, each declared field must be *referenced by name* in each
//! codec/merge function body, or be exempted by a `[[snapshot.allow]]` /
//! `[[merge.allow]]` entry (with a mandatory reason) or an inline
//! `womlint::allow` on the field's declaration line. Matching is
//! token-level (an identifier equal to the field name anywhere in the
//! body counts), which accepts destructuring and struct-literal forms
//! and cannot be fooled by comments or strings — but a same-named local
//! variable also counts; see DESIGN.md §9 for the known limits.

use crate::callgraph::{FileUnit, FnRef, Workspace};
use crate::config::{Config, CoverageAllow};
use crate::parse::StructDef;
use crate::{push, Diagnostic, Report, RULE_MERGE_COVERAGE, RULE_SNAPSHOT_COVERAGE};
use std::collections::BTreeMap;

/// Runs both coverage families over the workspace.
pub fn check(cfg: &Config, ws: &Workspace, report: &mut Report) {
    check_family(
        ws,
        report,
        &snap_codec_fns(ws),
        &cfg.snapshot_allow,
        RULE_SNAPSHOT_COVERAGE,
        "snapshot",
        "serialized",
    );
    check_family(
        ws,
        report,
        &merge_fns(ws),
        &cfg.merge_allow,
        RULE_MERGE_COVERAGE,
        "merge",
        "merged",
    );
}

/// Snap-codec functions grouped by `(crate, owner type)`.
fn snap_codec_fns(ws: &Workspace) -> BTreeMap<(String, String), Vec<FnRef>> {
    collect_fns(ws, |unit, f| {
        let enc = f.name == "save_state" && f.signature_mentions(&unit.scan.tokens, "SnapWriter");
        let dec = (f.name == "load_state" || f.name == "restore_state")
            && f.signature_mentions(&unit.scan.tokens, "SnapReader");
        enc || dec
    })
}

/// Merge functions grouped by `(crate, owner type)`.
fn merge_fns(ws: &Workspace) -> BTreeMap<(String, String), Vec<FnRef>> {
    collect_fns(ws, |_, f| f.name == "merge" || f.name == "merge_disjoint")
}

fn collect_fns(
    ws: &Workspace,
    mut want: impl FnMut(&FileUnit, &crate::parse::FnDef) -> bool,
) -> BTreeMap<(String, String), Vec<FnRef>> {
    let mut out: BTreeMap<(String, String), Vec<FnRef>> = BTreeMap::new();
    for (fi, unit) in ws.files.iter().enumerate() {
        for (gi, f) in unit.items.fns.iter().enumerate() {
            let Some(owner) = &f.owner else { continue };
            if want(unit, f) {
                out.entry((unit.krate.clone(), owner.clone()))
                    .or_default()
                    .push(FnRef { file: fi, func: gi });
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn check_family(
    ws: &Workspace,
    report: &mut Report,
    groups: &BTreeMap<(String, String), Vec<FnRef>>,
    allows: &[CoverageAllow],
    rule: &str,
    section: &str,
    verb: &str,
) {
    for ((krate, ty), fns) in groups {
        // Inherent impls live in the defining crate, so the struct is
        // found in the same crate; enums and tuple structs have no named
        // fields to prove.
        let Some((unit, def)) = find_struct(ws, krate, ty) else {
            continue;
        };
        for field in &def.fields {
            if let Some(a) = allows
                .iter()
                .find(|a| &a.type_name == ty && a.field == field.name)
            {
                report.suppressed.push(Diagnostic {
                    rule: rule.into(),
                    file: unit.path.clone(),
                    line: field.line,
                    message: format!(
                        "`{ty}.{}` allowlisted in womlint.toml ({})",
                        field.name, a.reason
                    ),
                });
                continue;
            }
            for &fref in fns {
                let (Some(funit), Some(f)) = (ws.file(fref), ws.func(fref)) else {
                    continue;
                };
                if !f.body_mentions(&funit.scan.tokens, &field.name) {
                    push(
                        report,
                        &unit.scan,
                        Diagnostic {
                            rule: rule.into(),
                            file: unit.path.clone(),
                            line: field.line,
                            message: format!(
                                "field `{ty}.{}` is not referenced by `{}` \
                                 ({}:{}) — every field must be {verb} or \
                                 exempted via [[{section}.allow]] with a reason",
                                field.name, f.name, funit.path, f.line
                            ),
                        },
                    );
                }
            }
        }
    }
}

fn find_struct<'a>(
    ws: &'a Workspace,
    krate: &str,
    ty: &str,
) -> Option<(&'a FileUnit, &'a StructDef)> {
    ws.files.iter().filter(|u| u.krate == krate).find_map(|u| {
        u.items
            .struct_named(ty)
            .filter(|s| s.has_named_fields)
            .map(|s| (u, s))
    })
}
