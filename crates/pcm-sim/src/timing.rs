//! Timing parameters for the PCM device and channel.
//!
//! The defaults follow the paper's §5 configuration for the modified
//! DRAMSim2 simulator: row read delay 27 ns, row write delay 150 ns, RESET
//! latency 40 ns, SET latency 150 ns, and a 4000 ns PCM-refresh period, on a
//! JEDEC-DDR3-style bus.

use crate::error::SimError;

/// Simulated time, measured in memory-controller clock cycles.
pub type Cycle = u64;

/// Nanosecond-denominated PCM/channel timing, convertible to cycles.
///
/// ```
/// use pcm_sim::TimingParams;
///
/// let t = TimingParams::paper_pcm();
/// assert_eq!(t.set_ns, 150);
/// assert_eq!(t.reset_ns, 40);
/// // The slowdown factor S = SET/RESET used throughout the paper:
/// assert!((t.slowdown_factor() - 3.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Controller clock period in nanoseconds (DDR3-1600: 1.25 ns).
    pub clock_ns: f64,
    /// Row read delay (activate + column read) in ns. Paper: 27 ns.
    pub read_ns: u64,
    /// Full row write delay (worst case, includes SET) in ns. Paper: 150 ns.
    pub write_ns: u64,
    /// RESET pulse latency in ns. Paper: 40 ns.
    pub reset_ns: u64,
    /// SET pulse latency in ns. Paper: 150 ns.
    pub set_ns: u64,
    /// PCM-refresh scheduling period in ns. Paper: 4000 ns.
    pub refresh_period_ns: u64,
    /// Burst length in beats (DDR3: 8); data occupies `burst_length / 2`
    /// clock cycles on the DDR bus.
    pub burst_length: u32,
    /// Row-buffer hit latency for reads (column access only) in ns; used
    /// only by the open-page row policy.
    pub row_hit_read_ns: u64,
}

impl TimingParams {
    /// The paper's PCM timing (§5) on a DDR3-1600 channel.
    #[must_use]
    pub fn paper_pcm() -> Self {
        Self {
            clock_ns: 1.25,
            read_ns: 27,
            write_ns: 150,
            reset_ns: 40,
            set_ns: 150,
            refresh_period_ns: 4000,
            burst_length: 8,
            row_hit_read_ns: 15,
        }
    }

    /// DRAM-like timing, useful for comparison experiments.
    #[must_use]
    pub fn dram_like() -> Self {
        Self {
            clock_ns: 1.25,
            read_ns: 27,
            write_ns: 27,
            reset_ns: 27,
            set_ns: 27,
            refresh_period_ns: 7800,
            burst_length: 8,
            row_hit_read_ns: 15,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any latency is zero, the clock
    /// period is non-positive, or SET is faster than RESET (the asymmetry
    /// the whole architecture depends on must at least be non-negative).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.clock_ns <= 0.0 {
            return Err(SimError::InvalidConfig("clock_ns must be positive".into()));
        }
        for (name, v) in [
            ("read_ns", self.read_ns),
            ("write_ns", self.write_ns),
            ("reset_ns", self.reset_ns),
            ("set_ns", self.set_ns),
            ("refresh_period_ns", self.refresh_period_ns),
        ] {
            if v == 0 {
                return Err(SimError::InvalidConfig(format!("{name} must be positive")));
            }
        }
        if self.burst_length == 0 || !self.burst_length.is_multiple_of(2) {
            return Err(SimError::InvalidConfig(
                "burst_length must be a positive even beat count".into(),
            ));
        }
        if self.set_ns < self.reset_ns {
            return Err(SimError::InvalidConfig(
                "set_ns must be at least reset_ns (PCM SET is the slow operation)".into(),
            ));
        }
        Ok(())
    }

    /// Converts nanoseconds to (rounded-up) controller cycles.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: u64) -> Cycle {
        (ns as f64 / self.clock_ns).ceil() as Cycle
    }

    /// Row read latency in cycles.
    #[must_use]
    pub fn read_cycles(&self) -> Cycle {
        self.ns_to_cycles(self.read_ns)
    }

    /// Worst-case (SET-bearing) row write latency in cycles.
    #[must_use]
    pub fn write_cycles(&self) -> Cycle {
        self.ns_to_cycles(self.write_ns)
    }

    /// RESET-only row write latency in cycles.
    #[must_use]
    pub fn reset_cycles(&self) -> Cycle {
        self.ns_to_cycles(self.reset_ns)
    }

    /// Row-buffer-hit read latency in cycles.
    #[must_use]
    pub fn row_hit_read_cycles(&self) -> Cycle {
        self.ns_to_cycles(self.row_hit_read_ns)
    }

    /// PCM-refresh period in cycles.
    #[must_use]
    pub fn refresh_period_cycles(&self) -> Cycle {
        self.ns_to_cycles(self.refresh_period_ns)
    }

    /// Data burst duration on the DDR bus: `burst_length / 2` cycles.
    #[must_use]
    pub fn burst_cycles(&self) -> Cycle {
        Cycle::from(self.burst_length / 2)
    }

    /// Burst-mode rank refresh latency (§3.2):
    /// `t_WR + N_bank · L_burst / 2` cycles.
    #[must_use]
    pub fn rank_refresh_cycles(&self, banks_per_rank: u32) -> Cycle {
        self.write_cycles() + Cycle::from(banks_per_rank) * self.burst_cycles()
    }

    /// The SET/RESET slowdown factor `S` of §3.2.
    #[must_use]
    pub fn slowdown_factor(&self) -> f64 {
        self.set_ns as f64 / self.reset_ns as f64
    }

    /// Converts cycles back to nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.clock_ns
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::paper_pcm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        TimingParams::paper_pcm().validate().unwrap();
        TimingParams::dram_like().validate().unwrap();
    }

    #[test]
    fn cycle_conversions_round_up() {
        let t = TimingParams::paper_pcm();
        assert_eq!(t.ns_to_cycles(27), 22); // 27 / 1.25 = 21.6 -> 22
        assert_eq!(t.ns_to_cycles(150), 120);
        assert_eq!(t.ns_to_cycles(40), 32);
        assert_eq!(t.burst_cycles(), 4);
    }

    #[test]
    fn rank_refresh_matches_paper_formula() {
        let t = TimingParams::paper_pcm();
        // t_WR + N_bank * L_burst/2 with N_bank = 32.
        assert_eq!(t.rank_refresh_cycles(32), 120 + 32 * 4);
    }

    #[test]
    fn slowdown_is_set_over_reset() {
        assert!((TimingParams::paper_pcm().slowdown_factor() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut t = TimingParams::paper_pcm();
        t.clock_ns = 0.0;
        assert!(t.validate().is_err());

        let mut t = TimingParams::paper_pcm();
        t.read_ns = 0;
        assert!(t.validate().is_err());

        let mut t = TimingParams::paper_pcm();
        t.burst_length = 7;
        assert!(t.validate().is_err());

        let mut t = TimingParams::paper_pcm();
        t.set_ns = 20; // faster than RESET: nonsense for PCM
        assert!(t.validate().is_err());
    }

    #[test]
    fn ns_round_trip() {
        let t = TimingParams::paper_pcm();
        assert!((t.cycles_to_ns(t.ns_to_cycles(1000)) - 1000.0).abs() < t.clock_ns);
    }
}
