//! Tours the bundled WOM-code families and their theory: geometry,
//! lifetime rate vs the Rivest–Shamir capacity bound, and the §3.2
//! latency bound each would enjoy on the paper's PCM.
//!
//! Run with `cargo run --example code_families`.

use womcode_pcm::code::analysis::{latency_ratio_bound, lifetime_rate, wom_capacity_bits_per_wit};
use womcode_pcm::code::{BlockCodec, FlipCode, IdentityCode, Inverted, Rs23Code, Rs2Code, WomCode};

fn describe(name: &str, code: &dyn WomCode, s: f64) {
    let rate = lifetime_rate(code);
    let cap = wom_capacity_bits_per_wit(code.writes());
    println!(
        "{name:24} <2^{}>^{}/{:<3} overhead {:>5.0}%  rate {rate:.2}/{cap:.2} bits/wit ({:>3.0}%)  latency bound {:.3}",
        code.data_bits(),
        code.writes(),
        code.wits(),
        code.overhead() * 100.0,
        rate / cap * 100.0,
        latency_ratio_bound(code.writes(), s),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = 150.0 / 40.0; // the paper's SET/RESET slowdown

    println!("bundled WOM-code families on the paper's PCM (S = {s:.2}):\n");
    describe("identity (baseline)", &IdentityCode::new(2)?, s);
    describe("rs23 (Table 1)", &Rs23Code::new(), s);
    for k in 2..=4 {
        describe(&format!("rs2 family, k = {k}"), &Rs2Code::new(k)?, s);
    }
    for t in [2u32, 4, 8] {
        describe(&format!("flip code, t = {t}"), &FlipCode::new(t)?, s);
    }

    // Every family plugs into the same row-level machinery. Push a cache
    // line through each and count the physical pulses.
    println!("\none 64-byte line, two writes through each (inverted) code:");
    fn drive<C: WomCode>(name: &str, code: C) -> Result<(), womcode_pcm::code::WomCodeError> {
        let codec = BlockCodec::new(Inverted::new(code), 64 * 8)?;
        let mut cells = codec.erased_buffer();
        let a = codec.encode_row(0, &[0x5A; 64], &mut cells)?;
        let b = codec.encode_row(1, &[0xC3; 64], &mut cells)?;
        println!(
            "  {name:18} {} wits/line, write1 {:>4} RESET / {} SET, write2 {:>4} RESET / {} SET",
            codec.encoded_bits(),
            a.resets,
            a.sets,
            b.resets,
            b.sets
        );
        Ok(())
    }
    drive("rs23", Rs23Code::new())?;
    drive("rs2 k=4", Rs2Code::new(4)?)?;
    drive("flip t=2", FlipCode::new(2)?)?;

    println!(
        "\nno SET pulse ever fires within the rewrite budget - that is the whole\n\
         trick: PCM writes gated by the 40 ns RESET instead of the 150 ns SET."
    );
    Ok(())
}
