//! Dense symbol lookup tables: the word-parallel fast path's substrate.
//!
//! Every [`WomCode`] in this crate operates on small symbols (2–16 wits),
//! so the full transition function
//! `(generation, current_pattern, data_value) → (next_pattern, transitions)`
//! fits in a dense table that [`SymbolLut::build`] precompiles once per
//! codec. Row encoding then becomes a table walk over raw `u64` words —
//! no [`Pattern`] construction, no trait dispatch, no per-symbol
//! validation — which is where WOM-codec throughput comes from (cf. the
//! word-level treatment in the WIRE and fine-grain coset-coding PCM
//! literature).
//!
//! The table is bit-identical to the code it was built from *by
//! construction*: every entry is the memoized result of one
//! [`WomCode::encode`] / [`WomCode::decode`] call, including the
//! implementation-defined decode of non-codewords. Codes whose geometry
//! would need more than [`SymbolLut::MAX_TABLE_ENTRIES`] encode entries
//! (e.g. [`crate::rs2::Rs2Code`] at `k ≥ 5`, wide identity codes) do not
//! get a table; [`crate::block::BlockCodec`] falls back to the per-symbol
//! reference path for them.

use crate::code::WomCode;
use crate::error::WomCodeError;
use crate::simd;
use crate::wit::{Orientation, Pattern, Transitions};

/// Packed encode-table entry layout (one `u32` per entry):
///
/// * bits `0..16` — the next pattern's bits;
/// * bits `16..22` — SET transition count (`0 → 1` flips);
/// * bits `22..28` — RESET transition count (`1 → 0` flips);
/// * bit `31` — entry valid (clear means the symbol code errors for this
///   `(generation, pattern, data)` triple, e.g. an illegal transition).
const NEXT_MASK: u32 = 0xFFFF;
const SETS_SHIFT: u32 = 16;
const RESETS_SHIFT: u32 = 22;
const COUNT_MASK: u32 = 0x3F;
const VALID_BIT: u32 = 1 << 31;

/// A dense, validated lookup table for one symbol [`WomCode`].
///
/// ```
/// use wom_code::{Inverted, Rs23Code, SymbolLut, WomCode};
///
/// let code = Inverted::new(Rs23Code::new());
/// let lut = SymbolLut::build(&code).expect("rs23 is tiny");
/// // Every lookup agrees with the code it memoizes:
/// let erased = code.initial_pattern().bits();
/// let (next, t) = lut.encode(0, erased, 0b01).expect("legal first write");
/// assert_eq!(next, code.encode(0, 0b01, code.initial_pattern()).unwrap().bits());
/// assert_eq!(t.sets, 0); // inverted codes rewrite RESET-only
/// assert_eq!(lut.decode(next), 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolLut {
    data_bits: u32,
    wits: u32,
    writes: u32,
    values: usize,
    patterns: usize,
    /// `entries[(gen * patterns + pattern) * values + data]`.
    entries: Box<[u32]>,
    /// `decode[pattern]` — the code's decode of every possible pattern.
    decode: Box<[u16]>,
    /// The whole decode table broadcast into one register when
    /// `2^wits × data_bits ≤ 64` (`data_bits` bits per pattern), so the
    /// lane decode kernel needs no memory lookup at all.
    packed_decode: Option<u64>,
}

impl SymbolLut {
    /// Upper bound on `writes × 2^wits × 2^data_bits`; larger geometries
    /// are not tabulated and use the per-symbol reference path instead.
    pub const MAX_TABLE_ENTRIES: usize = 1 << 22;

    /// Upper bound on a *paired* table's entries ([`Self::build_pair`]).
    /// Much tighter than [`Self::MAX_TABLE_ENTRIES`]: pairing only pays
    /// when the table stays L1-resident (8192 entries = 32 KiB), since
    /// its whole point is halving cheap gathers — a pair table spilling
    /// to L2 would be slower than two L1 lookups.
    pub const MAX_PAIR_ENTRIES: usize = 1 << 13;

    /// Widest symbol (in wits or data bits) a table entry can represent.
    pub const MAX_SYMBOL_BITS: u32 = 16;

    /// Precompiles `code` into dense tables, or `None` when the geometry
    /// is too large to tabulate (see [`Self::MAX_TABLE_ENTRIES`]).
    #[must_use]
    pub fn build<C: WomCode + ?Sized>(code: &C) -> Option<Self> {
        Self::build_capped(code, Self::MAX_TABLE_ENTRIES)
    }

    /// Precompiles the *symbol-pair* product table of `code`: one entry
    /// per `(generation, pattern-pair, data-pair)` triple, so the row
    /// kernels can encode or decode two symbols per gather. The pair of
    /// adjacent symbols is itself a WOM code (the product code: low half
    /// = even symbol, matching the row's little-endian bit order), so
    /// the result is an ordinary [`SymbolLut`] with doubled geometry.
    ///
    /// Returns `None` when the doubled geometry exceeds
    /// [`Self::MAX_SYMBOL_BITS`] per field or [`Self::MAX_PAIR_ENTRIES`]
    /// total — callers then stay on the single-symbol table.
    #[must_use]
    pub fn build_pair<C: WomCode + ?Sized>(code: &C) -> Option<Self> {
        Self::build_capped(&Paired(code), Self::MAX_PAIR_ENTRIES)
    }

    fn build_capped<C: WomCode + ?Sized>(code: &C, cap: usize) -> Option<Self> {
        let data_bits = code.data_bits();
        let wits = code.wits();
        let writes = code.writes();
        if data_bits > Self::MAX_SYMBOL_BITS || wits > Self::MAX_SYMBOL_BITS || writes == 0 {
            return None;
        }
        let values = 1usize << data_bits;
        let patterns = 1usize << wits;
        let total = (writes as usize)
            .checked_mul(patterns)?
            .checked_mul(values)?;
        if total > cap {
            return None;
        }
        let wlen = wits as usize;
        let mut entries = vec![0u32; total].into_boxed_slice();
        for gen in 0..writes {
            for bits in 0..patterns {
                let current = Pattern::from_bits(bits as u64, wlen);
                for data in 0..values {
                    let idx = (gen as usize * patterns + bits) * values + data;
                    if let Ok(next) = code.encode(gen, data as u64, current) {
                        let t = current
                            .transitions_to(next)
                            .expect("encode preserves width");
                        entries[idx] = VALID_BIT
                            | (next.bits() as u32 & NEXT_MASK)
                            | ((t.sets & COUNT_MASK) << SETS_SHIFT)
                            | ((t.resets & COUNT_MASK) << RESETS_SHIFT);
                    }
                }
            }
        }
        let decode = (0..patterns)
            .map(|bits| code.decode(Pattern::from_bits(bits as u64, wlen)) as u16)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let dmask = (1u64 << data_bits) - 1;
        let packed_decode = (patterns * data_bits as usize <= 64).then(|| {
            decode.iter().enumerate().fold(0u64, |acc, (p, &v)| {
                acc | ((u64::from(v) & dmask) << (p * data_bits as usize))
            })
        });
        Some(Self {
            data_bits,
            wits,
            writes,
            values,
            patterns,
            entries,
            decode,
            packed_decode,
        })
    }

    /// Data bits per symbol of the tabulated code.
    #[must_use]
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Wits per symbol of the tabulated code.
    #[must_use]
    pub fn wits(&self) -> u32 {
        self.wits
    }

    /// Write generations the table covers (the code's `writes()`).
    #[must_use]
    pub fn writes(&self) -> u32 {
        self.writes
    }

    /// Total encode-table entries (for size accounting).
    #[must_use]
    pub fn table_entries(&self) -> usize {
        self.entries.len()
    }

    /// Looks up one symbol encode: the next pattern's bits and the wit
    /// transitions from `current`. Returns `None` exactly when the
    /// tabulated code's [`WomCode::encode`] errors for this triple (the
    /// caller re-runs the code to surface the precise error).
    ///
    /// # Panics
    ///
    /// Panics (debug) / indexes out of range (release) if `gen`,
    /// `current`, or `data` exceed the tabulated geometry; the block
    /// codec validates them once per row, not once per symbol.
    #[inline]
    #[must_use]
    pub fn encode(&self, gen: u32, current: u64, data: u64) -> Option<(u64, Transitions)> {
        let e = self.entry(gen, current, data)?;
        Some((
            u64::from(e & NEXT_MASK),
            Transitions {
                sets: (e >> SETS_SHIFT) & COUNT_MASK,
                resets: (e >> RESETS_SHIFT) & COUNT_MASK,
            },
        ))
    }

    /// Like [`Self::encode`] but returns only the next pattern's bits —
    /// the row fast path counts transitions word-parallel instead.
    #[inline]
    #[must_use]
    pub fn encode_bits(&self, gen: u32, current: u64, data: u64) -> Option<u64> {
        self.entry(gen, current, data)
            .map(|e| u64::from(e & NEXT_MASK))
    }

    #[inline]
    fn entry(&self, gen: u32, current: u64, data: u64) -> Option<u32> {
        let idx = (gen as usize * self.patterns + current as usize) * self.values + data as usize;
        let e = self.entries[idx];
        (e & VALID_BIT != 0).then_some(e)
    }

    /// Looks up the decode of a pattern (total over all `2^wits`
    /// patterns, exactly as the tabulated code's [`WomCode::decode`]).
    #[inline]
    #[must_use]
    pub fn decode(&self, pattern: u64) -> u64 {
        u64::from(self.decode[pattern as usize])
    }

    /// Encodes a whole lane of symbols branch-free: one table load per
    /// symbol, with validity accumulated by AND-ing raw entries instead
    /// of branching per symbol. Returns `false` when *any* symbol's
    /// `(gen, pattern, data)` triple is invalid — `next` is then
    /// unspecified and the caller re-runs the per-symbol path to surface
    /// the exact error.
    ///
    /// `current` lanes must be masked to `wits()` bits and `data` lanes
    /// to `data_bits()` bits (the unpack kernel guarantees this); an
    /// out-of-range `gen` reports invalid for every symbol.
    #[inline]
    #[must_use]
    pub fn encode_symbols(
        &self,
        gen: u32,
        current: &[u16],
        data: &[u16],
        next: &mut [u16],
    ) -> bool {
        let span = self.patterns * self.values;
        let start = (gen as usize).saturating_mul(span);
        let table = self
            .entries
            .get(start..start.saturating_add(span))
            .unwrap_or_default();
        let dshift = self.data_bits;
        let mut valid = u32::MAX;
        for ((&c, &d), n) in current.iter().zip(data).zip(next.iter_mut()) {
            let idx = ((c as usize) << dshift) | d as usize;
            let e = table.get(idx).copied().unwrap_or(0);
            valid &= e;
            *n = (e & NEXT_MASK) as u16;
        }
        valid & VALID_BIT != 0
    }

    /// Fused row encode: one pass that gathers each of `lanes` symbols'
    /// current pattern from `cur` and data value from `data`, looks the
    /// pair up, and streams the packed next patterns into `out` — no
    /// intermediate lane arrays, so nothing but the table itself
    /// competes for L1 on kilobyte rows. Lane semantics match
    /// [`Self::encode_symbols`]: returns `false` (with `out`
    /// unspecified) when any symbol's triple is invalid, and the caller
    /// re-runs the per-symbol path for the exact error.
    ///
    /// `cur` and `data` must extend one word past the last bit gathered
    /// (see [`simd::gather`]); `out` receives
    /// `ceil(lanes × wits / 64)` fully assigned words, zeroed slack
    /// included, exactly as [`simd::pack_symbols`] would.
    #[must_use]
    pub fn encode_stream(
        &self,
        gen: u32,
        lanes: usize,
        cur: &[u64],
        data: &[u64],
        out: &mut [u64],
    ) -> bool {
        // Constant-specialize the hot geometries: literal widths turn
        // the variable shifts into immediates and let LLVM hoist the
        // table bounds check out of the loop (the gathered index is
        // provably `< 2^(wits + data_bits)` once the mask is a
        // constant). (6, 4) is the rs23/rs2-k2 pair, (3, 2) their
        // single-symbol path, (8, 2) the flip-t4 pair.
        match (self.wits, self.data_bits) {
            (6, 4) if lanes.is_multiple_of(32) => {
                self.encode_stream_blocked_6_4(gen, lanes, cur, data, out)
            }
            (6, 4) => self.encode_stream_body(gen, lanes, cur, data, out, 6, 4),
            (3, 2) => self.encode_stream_body(gen, lanes, cur, data, out, 3, 2),
            (8, 2) => self.encode_stream_body(gen, lanes, cur, data, out, 8, 2),
            (w, d) => self.encode_stream_body(gen, lanes, cur, data, out, w as usize, d as usize),
        }
    }

    /// Blocked fused encode for the 6-wit/4-data-bit pair geometry (the
    /// ⟨2²⟩²/3 and rs2-k2 pair tables): 32 lanes consume exactly three
    /// current words, two data words, and three output words, so the
    /// inner loop fully unrolls with every shift an immediate and no
    /// per-lane word indexing.
    fn encode_stream_blocked_6_4(
        &self,
        gen: u32,
        lanes: usize,
        cur: &[u64],
        data: &[u64],
        out: &mut [u64],
    ) -> bool {
        debug_assert!(lanes.is_multiple_of(32));
        let span = self.patterns * self.values;
        let start = (gen as usize).saturating_mul(span);
        let table = self
            .entries
            .get(start..start.saturating_add(span))
            .unwrap_or_default();
        let mut valid = u32::MAX;
        for ((cw, dw), ow) in cur
            .chunks_exact(3)
            .zip(data.chunks_exact(2))
            .zip(out.chunks_exact_mut(3))
            .take(lanes / 32)
        {
            let (c0, c1, c2) = match *cw {
                [a, b, c] => (a, b, c),
                _ => (0, 0, 0),
            };
            let (d0, d1) = match *dw {
                [a, b] => (a, b),
                _ => (0, 0),
            };
            let (mut o0, mut o1, mut o2) = (0u64, 0u64, 0u64);
            let mut look = |c: u64, d: u64| {
                let e = table
                    .get((((c & 63) as usize) << 4) | (d & 15) as usize)
                    .copied()
                    .unwrap_or(0);
                valid &= e;
                u64::from(e & NEXT_MASK)
            };
            // The word each lane touches is fixed per range, so every
            // shift below is a compile-time constant after unrolling;
            // lanes 10 and 21 straddle a word boundary on both sides.
            for k in 0..10 {
                o0 |= look(c0 >> (6 * k), d0 >> (4 * k)) << (6 * k);
            }
            let n = look((c0 >> 60) | (c1 << 4), d0 >> 40);
            o0 |= n << 60;
            o1 |= n >> 4;
            for k in 11..16 {
                o1 |= look(c1 >> (6 * k - 64), d0 >> (4 * k)) << (6 * k - 64);
            }
            for k in 16..21 {
                o1 |= look(c1 >> (6 * k - 64), d1 >> (4 * k - 64)) << (6 * k - 64);
            }
            let n = look((c1 >> 62) | (c2 << 2), d1 >> 20);
            o1 |= n << 62;
            o2 |= n >> 2;
            for k in 22..32 {
                o2 |= look(c2 >> (6 * k - 128), d1 >> (4 * k - 64)) << (6 * k - 128);
            }
            if let [a, b, c] = ow {
                *a = o0;
                *b = o1;
                *c = o2;
            }
        }
        valid & VALID_BIT != 0
    }

    /// Fused row decode: the read-side counterpart of
    /// [`Self::encode_stream`] — gathers each of `lanes` patterns from
    /// `cur` (padded as for [`simd::gather`]), looks it up in the decode
    /// table, and streams the packed data values into `out`
    /// (`ceil(lanes × data_bits / 64)` fully assigned words).
    pub fn decode_stream(&self, lanes: usize, cur: &[u64], out: &mut [u64]) {
        match (self.wits, self.data_bits) {
            (6, 4) if lanes.is_multiple_of(32) => self.decode_stream_blocked_6_4(lanes, cur, out),
            (6, 4) => self.decode_stream_body(lanes, cur, out, 6, 4),
            (w, d) => self.decode_stream_body(lanes, cur, out, w as usize, d as usize),
        }
    }

    /// Blocked decode for the 6-wit/4-data-bit pair geometry: 32 lanes
    /// read three words and write exactly two, shifts all immediate.
    fn decode_stream_blocked_6_4(&self, lanes: usize, cur: &[u64], out: &mut [u64]) {
        debug_assert!(lanes.is_multiple_of(32));
        for (cw, ow) in cur
            .chunks_exact(3)
            .zip(out.chunks_exact_mut(2))
            .take(lanes / 32)
        {
            let (c0, c1, c2) = match *cw {
                [a, b, c] => (a, b, c),
                _ => (0, 0, 0),
            };
            let (mut o0, mut o1) = (0u64, 0u64);
            let look = |c: u64| u64::from(self.decode.get((c & 63) as usize).copied().unwrap_or(0));
            // Same constant-shift ranges as the encode kernel; the
            // 4-bit outputs never straddle a word boundary.
            for k in 0..10 {
                o0 |= look(c0 >> (6 * k)) << (4 * k);
            }
            o0 |= look((c0 >> 60) | (c1 << 4)) << 40;
            for k in 11..16 {
                o0 |= look(c1 >> (6 * k - 64)) << (4 * k);
            }
            for k in 16..21 {
                o1 |= look(c1 >> (6 * k - 64)) << (4 * k - 64);
            }
            o1 |= look((c1 >> 62) | (c2 << 2)) << 20;
            for k in 22..32 {
                o1 |= look(c2 >> (6 * k - 128)) << (4 * k - 64);
            }
            if let [a, b] = ow {
                *a = o0;
                *b = o1;
            }
        }
    }

    #[inline(always)]
    fn decode_stream_body(
        &self,
        lanes: usize,
        cur: &[u64],
        out: &mut [u64],
        wbits: usize,
        dbits: usize,
    ) {
        let mut outw = out.iter_mut();
        let mut acc = 0u64;
        let mut acc_bits = 0usize;
        let mut cbit = 0usize;
        for _ in 0..lanes {
            let c = simd::gather(cur, cbit, wbits);
            cbit += wbits;
            let v = u64::from(self.decode.get(c as usize).copied().unwrap_or(0));
            acc |= v << acc_bits;
            acc_bits += dbits;
            if acc_bits >= 64 {
                if let Some(w) = outw.next() {
                    *w = acc;
                }
                acc_bits -= 64;
                acc = v >> (dbits - acc_bits);
            }
        }
        if acc_bits > 0 {
            if let Some(w) = outw.next() {
                *w = acc;
            }
        }
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn encode_stream_body(
        &self,
        gen: u32,
        lanes: usize,
        cur: &[u64],
        data: &[u64],
        out: &mut [u64],
        wbits: usize,
        dbits: usize,
    ) -> bool {
        let span = self.patterns * self.values;
        let start = (gen as usize).saturating_mul(span);
        let table = self
            .entries
            .get(start..start.saturating_add(span))
            .unwrap_or_default();
        let mut outw = out.iter_mut();
        let mut valid = u32::MAX;
        let mut acc = 0u64;
        let mut acc_bits = 0usize;
        let mut cbit = 0usize;
        let mut dbit = 0usize;
        for _ in 0..lanes {
            let c = simd::gather(cur, cbit, wbits);
            let d = simd::gather(data, dbit, dbits);
            cbit += wbits;
            dbit += dbits;
            let e = table
                .get(((c as usize) << dbits) | d as usize)
                .copied()
                .unwrap_or(0);
            valid &= e;
            let n = u64::from(e & NEXT_MASK);
            acc |= n << acc_bits;
            acc_bits += wbits;
            if acc_bits >= 64 {
                if let Some(w) = outw.next() {
                    *w = acc;
                }
                acc_bits -= 64;
                // Bits of `n` that did not fit (zero on an exact flush).
                acc = n >> (wbits - acc_bits);
            }
        }
        if acc_bits > 0 {
            if let Some(w) = outw.next() {
                *w = acc;
            }
        }
        valid & VALID_BIT != 0
    }

    /// Decodes a lane of patterns through the decode table (the lane
    /// counterpart of [`Self::decode`]). Pattern lanes must be masked to
    /// `wits()` bits.
    #[inline]
    pub fn decode_symbols(&self, patterns: &[u16], out: &mut [u16]) {
        for (&p, o) in patterns.iter().zip(out.iter_mut()) {
            *o = self.decode.get(p as usize).copied().unwrap_or(0);
        }
    }

    /// The register-resident broadcast decode table, when the geometry
    /// fits (`2^wits × data_bits ≤ 64`): pattern `p` decodes to bits
    /// `[p × data_bits, (p+1) × data_bits)` of the returned word.
    #[must_use]
    pub fn packed_decode(&self) -> Option<u64> {
        self.packed_decode
    }
}

/// The product code of two adjacent symbols of the same inner code: wit
/// bits `[0, w)` hold the even (low) symbol and `[w, 2w)` the odd one,
/// matching the row's little-endian symbol order; the data halves are
/// split the same way. Encoding/decoding a pair is exactly encoding each
/// half independently, so the product inherits every [`WomCode`]
/// contract guarantee from the inner code.
#[derive(Debug)]
struct Paired<'a, C: ?Sized>(&'a C);

impl<C: WomCode + ?Sized> WomCode for Paired<'_, C> {
    fn data_bits(&self) -> u32 {
        self.0.data_bits() * 2
    }

    fn wits(&self) -> u32 {
        self.0.wits() * 2
    }

    fn writes(&self) -> u32 {
        self.0.writes()
    }

    fn orientation(&self) -> Orientation {
        self.0.orientation()
    }

    fn encode(&self, gen: u32, data: u64, current: Pattern) -> Result<Pattern, WomCodeError> {
        let w = self.0.wits() as usize;
        let d = self.0.data_bits();
        let wmask = (1u64 << w) - 1;
        let dmask = (1u64 << d) - 1;
        let bits = current.bits();
        let lo = self
            .0
            .encode(gen, data & dmask, Pattern::from_bits(bits & wmask, w))?;
        let hi = self.0.encode(
            gen,
            (data >> d) & dmask,
            Pattern::from_bits((bits >> w) & wmask, w),
        )?;
        Ok(Pattern::from_bits(lo.bits() | (hi.bits() << w), 2 * w))
    }

    fn decode(&self, pattern: Pattern) -> u64 {
        let w = self.0.wits() as usize;
        let d = self.0.data_bits();
        let wmask = (1u64 << w) - 1;
        let bits = pattern.bits();
        self.0.decode(Pattern::from_bits(bits & wmask, w))
            | (self.0.decode(Pattern::from_bits((bits >> w) & wmask, w)) << d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flip::FlipCode;
    use crate::identity::IdentityCode;
    use crate::inverted::Inverted;
    use crate::rs2::Rs2Code;
    use crate::rs23::Rs23Code;
    use crate::simd::{pack_symbols, unpack_symbols};

    #[test]
    fn rs23_table_matches_code_everywhere() {
        let code = Rs23Code::new();
        let lut = SymbolLut::build(&code).unwrap();
        assert_eq!(lut.table_entries(), 2 * 8 * 4);
        for gen in 0..2 {
            for bits in 0..8u64 {
                let p = Pattern::from_bits(bits, 3);
                for data in 0..4u64 {
                    match code.encode(gen, data, p) {
                        Ok(next) => {
                            let (nb, t) = lut.encode(gen, bits, data).unwrap();
                            assert_eq!(nb, next.bits());
                            assert_eq!(t, p.transitions_to(next).unwrap());
                        }
                        Err(_) => assert!(lut.encode(gen, bits, data).is_none()),
                    }
                }
                assert_eq!(lut.decode(bits), code.decode(p));
            }
        }
    }

    #[test]
    fn inverted_codes_tabulate_reset_only_rewrites() {
        let code = Inverted::new(Rs23Code::new());
        let lut = SymbolLut::build(&code).unwrap();
        for data in 0..4u64 {
            let (first, t) = lut.encode(0, 0b111, data).unwrap();
            assert_eq!(t.sets, 0, "inverted first writes are RESET-only");
            for y in 0..4u64 {
                let (_, t2) = lut.encode(1, first, y).unwrap();
                assert_eq!(t2.sets, 0, "inverted rewrites are RESET-only");
            }
        }
    }

    #[test]
    fn oversized_geometries_are_refused() {
        // k = 5 ⇒ 31 wits ⇒ 2^31 patterns: far past the table budget.
        assert!(SymbolLut::build(&Rs2Code::new(5).unwrap()).is_none());
        assert!(SymbolLut::build(&IdentityCode::new(32).unwrap()).is_none());
        // Flip t = 16 is 2 × 16 × 65536 entries: comfortably inside.
        assert!(SymbolLut::build(&FlipCode::new(16).unwrap()).is_some());
        assert!(SymbolLut::build(&FlipCode::new(24).unwrap()).is_none());
    }

    #[test]
    fn lane_encode_matches_per_symbol_lookup() {
        let code = Inverted::new(Rs23Code::new());
        let lut = SymbolLut::build(&code).unwrap();
        for gen in 0..2 {
            let current: Vec<u16> = (0..8).flat_map(|c| (0..4).map(move |_| c)).collect();
            let data: Vec<u16> = (0..8).flat_map(|_| 0..4).collect();
            let mut next = vec![0u16; current.len()];
            let all_valid = lut.encode_symbols(gen, &current, &data, &mut next);
            let expect_valid = current
                .iter()
                .zip(&data)
                .all(|(&c, &d)| lut.encode_bits(gen, u64::from(c), u64::from(d)).is_some());
            assert_eq!(all_valid, expect_valid);
            if all_valid {
                for ((&c, &d), &n) in current.iter().zip(&data).zip(&next) {
                    assert_eq!(
                        u64::from(n),
                        lut.encode_bits(gen, u64::from(c), u64::from(d)).unwrap()
                    );
                }
            }
        }
        // Out-of-range generation: invalid for every symbol, no panic.
        let mut next = vec![0u16; 4];
        assert!(!lut.encode_symbols(9, &[7, 7, 7, 7], &[0, 1, 2, 3], &mut next));
    }

    #[test]
    fn packed_decode_broadcasts_small_tables_only() {
        let lut = SymbolLut::build(&Inverted::new(Rs23Code::new())).unwrap();
        let packed = lut.packed_decode().expect("8 patterns x 2 bits fits");
        for p in 0..8u64 {
            assert_eq!((packed >> (p * 2)) & 0b11, lut.decode(p));
        }
        // 128 patterns x 3 bits = 384 bits: no broadcast.
        let wide = SymbolLut::build(&Rs2Code::new(3).unwrap()).unwrap();
        assert!(wide.packed_decode().is_none());
        // FlipCode t=4: 16 patterns x 1 bit = 16 bits: broadcast.
        let flip = SymbolLut::build(&FlipCode::new(4).unwrap()).unwrap();
        let packed = flip.packed_decode().unwrap();
        for p in 0..16u64 {
            assert_eq!((packed >> p) & 1, flip.decode(p));
        }
    }

    #[test]
    fn lane_decode_matches_per_symbol_decode() {
        let lut = SymbolLut::build(&Rs2Code::new(3).unwrap()).unwrap();
        let patterns: Vec<u16> = (0..128).collect();
        let mut out = vec![0u16; patterns.len()];
        lut.decode_symbols(&patterns, &mut out);
        for (&p, &v) in patterns.iter().zip(&out) {
            assert_eq!(u64::from(v), lut.decode(u64::from(p)));
        }
    }

    #[test]
    fn encode_stream_matches_lane_encode() {
        let code = Inverted::new(Rs23Code::new());
        let lut = SymbolLut::build(&code).unwrap();
        let lanes = 100; // 300 wit bits, 200 data bits
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for gen in 0..2 {
            // Erased current image: every symbol encodes legally.
            let cur_words: Vec<u64> = vec![u64::MAX; 5].into_iter().chain([0]).collect();
            let data_words: Vec<u64> = (0..4).map(|_| rand()).chain([0]).collect();
            let mut cur = vec![0u16; lanes];
            let mut dat = vec![0u16; lanes];
            let mut next = vec![0u16; lanes];
            unpack_symbols(&cur_words, 3, &mut cur);
            unpack_symbols(&data_words, 2, &mut dat);
            assert!(lut.encode_symbols(gen, &cur, &dat, &mut next));
            let mut expect = vec![0u64; (lanes * 3).div_ceil(64)];
            pack_symbols(&next, 3, &mut expect);
            let mut out = vec![u64::MAX; expect.len()];
            assert!(lut.encode_stream(gen, lanes, &cur_words, &data_words, &mut out));
            assert_eq!(out, expect, "gen {gen}");
        }
        // Arbitrary (possibly corrupt) current images: the validity
        // verdict must match the lane kernel's, whichever way it goes.
        for gen in 0..2 {
            for _ in 0..8 {
                let cur_words: Vec<u64> = (0..5).map(|_| rand()).chain([0]).collect();
                let data_words: Vec<u64> = (0..4).map(|_| rand()).chain([0]).collect();
                let mut cur = vec![0u16; lanes];
                let mut dat = vec![0u16; lanes];
                let mut next = vec![0u16; lanes];
                unpack_symbols(&cur_words, 3, &mut cur);
                unpack_symbols(&data_words, 2, &mut dat);
                let lane_ok = lut.encode_symbols(gen, &cur, &dat, &mut next);
                let mut out = vec![0u64; (lanes * 3).div_ceil(64)];
                let ok = lut.encode_stream(gen, lanes, &cur_words, &data_words, &mut out);
                assert_eq!(ok, lane_ok);
                if ok {
                    let mut expect = vec![0u64; out.len()];
                    pack_symbols(&next, 3, &mut expect);
                    assert_eq!(out, expect);
                }
            }
        }
        // Out-of-range generation: invalid, no panic.
        let pad = [0u64; 2];
        let mut out = [0u64; 1];
        assert!(!lut.encode_stream(7, 4, &pad, &pad, &mut out));
    }

    #[test]
    fn pair_stream_blocked_matches_lane_kernels() {
        // 128 lanes is a multiple of 32, so the (6,4) pair geometry
        // takes the blocked kernels; 50 lanes falls back to the dynamic
        // bodies. Both must agree with the lane kernels bit for bit.
        let code = Inverted::new(Rs23Code::new());
        let pair = SymbolLut::build_pair(&code).unwrap();
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &lanes in &[128usize, 50] {
            let cur_len = (lanes * 6).div_ceil(64);
            let dat_len = (lanes * 4).div_ceil(64);
            for gen in 0..2 {
                for trial in 0..8 {
                    let cur_words: Vec<u64> = if trial == 0 {
                        vec![u64::MAX; cur_len].into_iter().chain([0]).collect()
                    } else {
                        (0..cur_len).map(|_| rand()).chain([0]).collect()
                    };
                    let data_words: Vec<u64> = (0..dat_len).map(|_| rand()).chain([0]).collect();
                    let mut cur = vec![0u16; lanes];
                    let mut dat = vec![0u16; lanes];
                    let mut next = vec![0u16; lanes];
                    unpack_symbols(&cur_words, 6, &mut cur);
                    unpack_symbols(&data_words, 4, &mut dat);
                    let lane_ok = pair.encode_symbols(gen, &cur, &dat, &mut next);
                    let mut out = vec![0u64; cur_len];
                    let ok = pair.encode_stream(gen, lanes, &cur_words, &data_words, &mut out);
                    assert_eq!(ok, lane_ok, "lanes {lanes} gen {gen} trial {trial}");
                    if ok {
                        let mut expect = vec![0u64; cur_len];
                        pack_symbols(&next, 6, &mut expect);
                        assert_eq!(out, expect, "lanes {lanes} gen {gen} trial {trial}");
                    }
                    let mut dec = vec![0u16; lanes];
                    pair.decode_symbols(&cur, &mut dec);
                    let mut expect = vec![0u64; dat_len];
                    pack_symbols(&dec, 4, &mut expect);
                    let mut got = vec![u64::MAX; dat_len];
                    pair.decode_stream(lanes, &cur_words, &mut got);
                    assert_eq!(got, expect, "decode lanes {lanes} trial {trial}");
                }
            }
        }
    }

    #[test]
    fn pair_table_is_the_product_of_single_lookups() {
        let code = Inverted::new(Rs23Code::new());
        let single = SymbolLut::build(&code).unwrap();
        let pair = SymbolLut::build_pair(&code).unwrap();
        assert_eq!(pair.wits(), 6);
        assert_eq!(pair.data_bits(), 4);
        assert_eq!(pair.writes(), 2);
        assert_eq!(pair.table_entries(), 2 * 64 * 16);
        for gen in 0..2 {
            for cur in 0..64u64 {
                for data in 0..16u64 {
                    let lo = single.encode(gen, cur & 7, data & 3);
                    let hi = single.encode(gen, cur >> 3, data >> 2);
                    match (lo, hi) {
                        (Some((ln, lt)), Some((hn, ht))) => {
                            let (n, t) = pair.encode(gen, cur, data).unwrap();
                            assert_eq!(n, ln | (hn << 3));
                            assert_eq!(t.sets, lt.sets + ht.sets);
                            assert_eq!(t.resets, lt.resets + ht.resets);
                        }
                        _ => assert!(pair.encode(gen, cur, data).is_none()),
                    }
                }
                assert_eq!(
                    pair.decode(cur),
                    single.decode(cur & 7) | (single.decode(cur >> 3) << 2)
                );
            }
        }
    }

    #[test]
    fn pair_tables_obey_the_tighter_cap() {
        // rs2 k=3 pairs to 14 wits: within MAX_SYMBOL_BITS but
        // 2 x 2^14 x 2^6 entries is far past the L1-resident pair cap.
        assert!(SymbolLut::build_pair(&Rs2Code::new(3).unwrap()).is_none());
        // flip t=7 tabulates singly but its pair is 7 x 2^14 x 4 entries.
        assert!(SymbolLut::build(&FlipCode::new(7).unwrap()).is_some());
        assert!(SymbolLut::build_pair(&FlipCode::new(7).unwrap()).is_none());
        // flip t=4 pairs to 4 x 2^8 x 4 = 4096 entries: eligible.
        assert!(SymbolLut::build_pair(&FlipCode::new(4).unwrap()).is_some());
        // rs2 k=4 pairs to 30 wits: past MAX_SYMBOL_BITS entirely.
        assert!(SymbolLut::build_pair(&Rs2Code::new(4).unwrap()).is_none());
    }

    #[test]
    fn geometry_accessors_mirror_the_code() {
        let code = Rs2Code::new(3).unwrap();
        let lut = SymbolLut::build(&code).unwrap();
        assert_eq!(lut.data_bits(), 3);
        assert_eq!(lut.wits(), 7);
        assert_eq!(lut.writes(), 2);
    }
}
