//! Multi-tenant service throughput: drives `womd` in-process with N
//! tenants multiplexed over a fixed worker pool, reporting aggregate
//! records/s and the p50/p99 feed (enqueue-to-accept) latency, and
//! verifying the service determinism contract along the way — every
//! tenant's final metrics and epoch series must be byte-identical to a
//! solo run of the same trace.
//!
//! The acceptance gate: with 16 tenants on 8 workers the service must
//! sustain at least 0.5× the single-tenant verified throughput per
//! effective worker (`min(workers, tenants, cores)`). The binary exits
//! non-zero when the ratio or any determinism check fails, so CI can
//! run it directly.
//!
//! With `--smoke --womd PATH [--epochs-out OUT]` it instead spawns the
//! `womd` binary and drives the same tenants through the newline-JSON
//! wire protocol over stdio, verifies each tenant's `metrics_fnv` and
//! epoch stream against an in-process solo run, and writes one tenant's
//! epoch JSONL stream to OUT for a byte diff against the committed
//! golden fixture (`crates/womd/fixtures/service_smoke_epochs.jsonl`).

use std::io::{BufRead, BufReader, Write};
use std::process::{ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use pcm_trace::binary::encode_records_into;
use pcm_trace::synth::benchmarks;
use pcm_trace::TraceRecord;
use wom_pcm::observe::push_epoch_jsonl;
use wom_pcm::session::{Session, SessionSpec};
use wom_pcm::{Architecture, SystemConfig};
use wom_pcm_bench::cli;
use womd::json::{self, Json};
use womd::service::fnv1a;
use womd::{Service, ServiceConfig, ServiceError, SessionEvent};

const USAGE: &str = "service_throughput [--tenants N] [--workers N] [--records N] [--batch N] \
                     [--epoch-cycles N] [--floor RATIO] [--epochs-out PATH] \
                     [--smoke --womd PATH]";

/// Per-tenant trace length.
const DEFAULT_RECORDS: usize = 20_000;
/// Records per feed batch. 40 batches per tenant at the defaults —
/// past the service's 32-batch queue cap, so a solo-paced producer can
/// hit the `Busy` back-pressure path and the retry loop is exercised.
const DEFAULT_BATCH: usize = 500;
/// Epoch width: every tenant streams an epoch series.
const DEFAULT_EPOCH_CYCLES: u64 = 50_000;
/// Minimum multi-tenant throughput per effective worker, as a fraction
/// of the solo single-tenant throughput (the acceptance criterion).
/// Override with `--floor` — a parking soak (more tenants per worker
/// than `max_resident`) deliberately thrashes checkpoints and is about
/// the determinism checks, not throughput; run it with `--floor 0`.
const MIN_PER_WORKER_RATIO: f64 = 0.5;

/// Workloads tenants cycle through (all bundled generators).
const WORKLOADS: [&str; 4] = ["qsort", "mad", "typeset", "stringsearch"];

struct Tenant {
    name: String,
    arch: Architecture,
    workload: &'static str,
    trace: Vec<TraceRecord>,
}

fn make_tenants(n: usize, records: usize) -> Vec<Tenant> {
    let archs = Architecture::all_paper();
    (0..n)
        .map(|i| {
            let workload = WORKLOADS[i % WORKLOADS.len()];
            let seed = wom_pcm_bench::DEFAULT_SEED + i as u64;
            let trace = benchmarks::by_name(workload)
                .expect("bundled workload")
                .generate(seed, records);
            Tenant {
                name: format!("t{i}"),
                arch: archs[i % archs.len()],
                workload,
                trace,
            }
        })
        .collect()
}

/// The session spec a tenant runs under, identical across the solo
/// reference run, the in-process service, and the wire smoke (whose
/// `open` frame says `preset: tiny` + `epoch_cycles`).
fn spec(t: &Tenant, epoch_cycles: u64) -> SessionSpec {
    SessionSpec::new(SystemConfig::tiny(t.arch)).epoch_cycles(epoch_cycles)
}

/// Constant leading tags of every epoch line the tenant emits.
fn tags(t: &Tenant) -> Vec<(String, String)> {
    vec![
        ("tenant".to_string(), t.name.clone()),
        ("workload".to_string(), t.workload.to_string()),
    ]
}

fn die(message: &str) -> ! {
    eprintln!("service_throughput: {message}");
    std::process::exit(1);
}

struct SoloRun {
    metrics_debug: String,
    epoch_lines: Vec<String>,
    seconds: f64,
}

/// Runs one tenant's trace alone through a plain [`Session`] — the
/// verified single-tenant baseline and the determinism reference.
fn run_solo(t: &Tenant, epoch_cycles: u64, batch: usize) -> SoloRun {
    // Wall-clock is the quantity measured; the `Instant::now` ban
    // targets simulation code, not the benchmark harness.
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    let mut session = Session::open(spec(t, epoch_cycles)).expect("tenant specs validate");
    for chunk in t.trace.chunks(batch) {
        session.feed(chunk).expect("solo feeds run clean");
    }
    let metrics = session.finish().expect("solo runs finish");
    let seconds = start.elapsed().as_secs_f64();
    let owned = tags(t);
    let tag_refs: Vec<(&str, &str)> = owned
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let mut epoch_lines = Vec::new();
    for (index, start_cycle, end_cycle, counters) in session.poll_epochs().iter() {
        let mut line = String::new();
        push_epoch_jsonl(
            &mut line,
            &tag_refs,
            index,
            start_cycle,
            end_cycle,
            counters,
        );
        epoch_lines.push(line);
    }
    SoloRun {
        metrics_debug: format!("{metrics:#?}"),
        epoch_lines,
        seconds,
    }
}

#[derive(Default)]
struct ServiceRun {
    metrics_debug: String,
    epoch_lines: Vec<String>,
}

fn absorb(name: &str, events: Vec<SessionEvent>, out: &mut ServiceRun) {
    for event in events {
        match event {
            SessionEvent::Epoch { line, .. } => out.epoch_lines.push(line),
            SessionEvent::Finished { metrics_debug, .. } => out.metrics_debug = metrics_debug,
            SessionEvent::Error { kind, message } => {
                die(&format!("tenant '{name}' failed ({kind}): {message}"))
            }
        }
    }
}

/// Feeds every tenant round-robin through an in-process [`Service`],
/// returning per-tenant results, the wall-clock seconds from open to
/// last finish, and every feed call's enqueue-to-accept latency
/// (`Busy` retries included — that wait *is* the queue latency).
fn run_service(
    tenants: &[Tenant],
    workers: usize,
    batch: usize,
    epoch_cycles: u64,
) -> (Vec<ServiceRun>, f64, Vec<f64>) {
    let service = Service::start(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
    .expect("worker pool starts");
    let mut results: Vec<ServiceRun> = tenants.iter().map(|_| ServiceRun::default()).collect();
    let mut latencies = Vec::new();
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    for t in tenants {
        service
            .open(&t.name, spec(t, epoch_cycles), &tags(t))
            .unwrap_or_else(|e| die(&format!("open of '{}' failed: {e}", t.name)));
    }
    let max_batches = tenants
        .iter()
        .map(|t| t.trace.chunks(batch).count())
        .max()
        .unwrap_or(0);
    for b in 0..max_batches {
        for (i, t) in tenants.iter().enumerate() {
            let Some(chunk) = t.trace.chunks(batch).nth(b) else {
                continue;
            };
            #[allow(clippy::disallowed_methods)]
            let enqueue = Instant::now();
            loop {
                match service.feed(&t.name, chunk.to_vec()) {
                    Ok(()) => break,
                    Err(ServiceError::Busy { .. }) => {
                        let events = service.poll(&t.name).expect("live sessions poll");
                        absorb(&t.name, events, &mut results[i]);
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    Err(e) => die(&format!("feed to '{}' failed: {e}", t.name)),
                }
            }
            latencies.push(enqueue.elapsed().as_secs_f64());
            let events = service.poll(&t.name).expect("live sessions poll");
            absorb(&t.name, events, &mut results[i]);
        }
    }
    for (i, t) in tenants.iter().enumerate() {
        match service.finish_wait(&t.name, Duration::from_secs(120)) {
            Ok(events) => absorb(&t.name, events, &mut results[i]),
            Err(e) => die(&format!("finish of '{}' failed: {e}", t.name)),
        }
        service.close(&t.name);
    }
    let seconds = start.elapsed().as_secs_f64();
    (results, seconds, latencies)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Compares one tenant's service-side results against its solo run;
/// returns the number of mismatches after reporting them.
fn check_tenant(name: &str, solo: &SoloRun, svc: &ServiceRun) -> usize {
    let mut mismatches = 0;
    if svc.metrics_debug != solo.metrics_debug {
        eprintln!("DETERMINISM FAILURE: tenant '{name}' metrics diverge from its solo run");
        mismatches += 1;
    }
    if svc.epoch_lines != solo.epoch_lines {
        eprintln!(
            "DETERMINISM FAILURE: tenant '{name}' epoch series diverges \
             ({} service lines vs {} solo lines)",
            svc.epoch_lines.len(),
            solo.epoch_lines.len()
        );
        mismatches += 1;
    }
    mismatches
}

fn write_epochs(path: &str, lines: &[String]) {
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(path, body).expect("writing the epoch JSONL");
    println!("wrote {} epoch lines to {path}", lines.len());
}

fn run_benchmark(
    tenant_count: usize,
    workers: usize,
    records: usize,
    batch: usize,
    epoch_cycles: u64,
    floor: f64,
    epochs_out: Option<&str>,
) {
    let tenants = make_tenants(tenant_count, records);
    let total_records: u64 = tenants.iter().map(|t| t.trace.len() as u64).sum();
    println!(
        "service throughput: {tenant_count} tenants on {workers} workers, \
         {records} records each (batches of {batch})\n"
    );

    let solos: Vec<SoloRun> = tenants
        .iter()
        .map(|t| run_solo(t, epoch_cycles, batch))
        .collect();
    let solo_seconds: f64 = solos.iter().map(|s| s.seconds).sum();
    let solo_rps = total_records as f64 / solo_seconds;
    println!(
        "solo baseline  {solo_rps:>14.0} records/s  ({solo_seconds:.3} s, one tenant at a time)"
    );

    let (results, seconds, mut latencies) = run_service(&tenants, workers, batch, epoch_cycles);
    let aggregate_rps = total_records as f64 / seconds;
    println!(
        "service        {aggregate_rps:>14.0} records/s  ({seconds:.3} s, {} feed batches)",
        latencies.len()
    );
    latencies.sort_by(f64::total_cmp);
    println!(
        "feed latency   p50 {:>8.1} µs   p99 {:>8.1} µs   max {:>8.1} µs",
        percentile(&latencies, 0.50) * 1e6,
        percentile(&latencies, 0.99) * 1e6,
        latencies.last().copied().unwrap_or(0.0) * 1e6
    );

    let mut mismatches = 0;
    for (t, (solo, svc)) in tenants.iter().zip(solos.iter().zip(&results)) {
        mismatches += check_tenant(&t.name, solo, svc);
    }
    if mismatches == 0 {
        println!(
            "determinism    {tenant_count}/{tenant_count} tenants byte-identical to solo \
             (metrics + epoch series)"
        );
    }

    let effective = workers
        .min(tenants.len())
        .min(wom_pcm_bench::parallel::default_threads());
    let ratio = aggregate_rps / (solo_rps * effective as f64);
    println!(
        "per-worker     {ratio:.2}x solo throughput across {effective} effective workers \
         (floor {floor:.2}x)"
    );

    if let Some(path) = epochs_out {
        write_epochs(path, &results[0].epoch_lines);
    }
    if mismatches > 0 {
        die(&format!("{mismatches} determinism mismatches"));
    }
    if ratio < floor {
        die(&format!(
            "per-worker throughput ratio {ratio:.2} is below the {floor:.2} floor"
        ));
    }
}

// ---------------------------------------------------------------------
// Wire smoke: the same tenants, driven through a spawned `womd` binary
// over the newline-JSON stdio protocol.
// ---------------------------------------------------------------------

struct SmokeClient {
    stdin: ChildStdin,
    reader: BufReader<ChildStdout>,
    names: Vec<String>,
    epoch_lines: Vec<Vec<String>>,
    finished: Vec<Option<(u64, String)>>,
}

fn field<'a>(frame: &'a Json, key: &str) -> &'a str {
    frame.get(key).and_then(Json::as_str).unwrap_or_default()
}

impl SmokeClient {
    fn idx(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| die(&format!("womd spoke about unknown session '{name}'")))
    }

    fn send(&mut self, frame: &str, payload: Option<&[u8]>) {
        writeln!(self.stdin, "{frame}").expect("womd stdin writes");
        if let Some(bytes) = payload {
            self.stdin.write_all(bytes).expect("womd stdin writes");
        }
        self.stdin.flush().expect("womd stdin flushes");
    }

    /// Reads one server frame, filing `epoch` and `finished` events as
    /// it goes, and returns it for the caller's ack handling.
    fn step(&mut self) -> Json {
        let mut line = String::new();
        if self.reader.read_line(&mut line).expect("womd stdout reads") == 0 {
            die("womd closed its stdout mid-conversation");
        }
        let frame = json::parse(line.trim())
            .unwrap_or_else(|e| die(&format!("unparseable womd frame: {e}: {line}")));
        match field(&frame, "event") {
            "epoch" => {
                let i = self.idx(field(&frame, "session"));
                let jsonl = frame
                    .get("line")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| die("epoch frame without a 'line'"));
                self.epoch_lines[i].push(jsonl.to_string());
            }
            "finished" => {
                let i = self.idx(field(&frame, "session"));
                let records = frame
                    .get("records")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| die("finished frame without 'records'"));
                self.finished[i] = Some((records, field(&frame, "metrics_fnv").to_string()));
            }
            _ => {}
        }
        frame
    }

    /// Reads frames until the `ok` ack for (`op`, `session`) arrives.
    /// Any non-`busy` error is fatal; `busy` returns `false`.
    fn await_ack(&mut self, op: &str, session: &str) -> bool {
        loop {
            let frame = self.step();
            match field(&frame, "event") {
                "ok" if field(&frame, "op") == op && field(&frame, "session") == session => {
                    return true;
                }
                "error" if field(&frame, "kind") == "busy" => return false,
                "error" => die(&format!(
                    "womd error ({}): {}",
                    field(&frame, "kind"),
                    field(&frame, "message")
                )),
                _ => {}
            }
        }
    }

    fn open(&mut self, t: &Tenant, epoch_cycles: u64) {
        let frame = format!(
            "{{\"op\":\"open\",\"session\":\"{name}\",\"arch\":\"{arch}\",\"preset\":\"tiny\",\
             \"epoch_cycles\":{epoch_cycles},\
             \"tags\":{{\"tenant\":\"{name}\",\"workload\":\"{workload}\"}}}}",
            name = t.name,
            arch = t.arch.slug(),
            workload = t.workload,
        );
        self.send(&frame, None);
        if !self.await_ack("open", &t.name) {
            die(&format!("open of '{}' reported busy", t.name));
        }
    }

    fn feed(&mut self, name: &str, payload: &[u8]) {
        loop {
            let frame = format!(
                "{{\"op\":\"feed\",\"session\":\"{name}\",\"bytes\":{}}}",
                payload.len()
            );
            self.send(&frame, Some(payload));
            if self.await_ack("feed", name) {
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn finish(&mut self, name: &str) {
        self.send(
            &format!("{{\"op\":\"finish\",\"session\":\"{name}\"}}"),
            None,
        );
        let i = self.idx(name);
        while self.finished[i].is_none() {
            let frame = self.step();
            if field(&frame, "event") == "error" {
                die(&format!(
                    "finish of '{name}' failed ({}): {}",
                    field(&frame, "kind"),
                    field(&frame, "message")
                ));
            }
        }
    }

    fn shutdown(&mut self) {
        self.send("{\"op\":\"shutdown\"}", None);
        loop {
            let frame = self.step();
            if field(&frame, "event") == "ok" && field(&frame, "op") == "shutdown" {
                return;
            }
        }
    }
}

fn run_smoke(
    womd_path: &str,
    tenant_count: usize,
    records: usize,
    batch: usize,
    epoch_cycles: u64,
    epochs_out: Option<&str>,
) {
    let tenants = make_tenants(tenant_count, records);
    println!(
        "wire smoke: {tenant_count} tenants through '{womd_path}' over stdio, \
         {records} records each (batches of {batch})"
    );
    let solos: Vec<SoloRun> = tenants
        .iter()
        .map(|t| run_solo(t, epoch_cycles, batch))
        .collect();

    let mut child = Command::new(womd_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| die(&format!("spawning '{womd_path}': {e}")));
    let mut client = SmokeClient {
        stdin: child.stdin.take().expect("piped stdin"),
        reader: BufReader::new(child.stdout.take().expect("piped stdout")),
        names: tenants.iter().map(|t| t.name.clone()).collect(),
        epoch_lines: vec![Vec::new(); tenant_count],
        finished: vec![None; tenant_count],
    };

    for t in &tenants {
        client.open(t, epoch_cycles);
    }
    let max_batches = tenants
        .iter()
        .map(|t| t.trace.chunks(batch).count())
        .max()
        .unwrap_or(0);
    let mut payload = Vec::new();
    for b in 0..max_batches {
        for t in &tenants {
            let Some(chunk) = t.trace.chunks(batch).nth(b) else {
                continue;
            };
            payload.clear();
            encode_records_into(chunk, &mut payload);
            client.feed(&t.name, &payload);
        }
    }
    for t in &tenants {
        client.finish(&t.name);
    }
    client.shutdown();
    drop(client.stdin);
    let status = child.wait().expect("womd exits");
    if !status.success() {
        die(&format!("womd exited with {status}"));
    }

    let mut mismatches = 0;
    for (i, (t, solo)) in tenants.iter().zip(&solos).enumerate() {
        let Some((got_records, got_fnv)) = &client.finished[i] else {
            die(&format!("tenant '{}' never finished", t.name));
        };
        if *got_records != t.trace.len() as u64 {
            eprintln!(
                "DETERMINISM FAILURE: tenant '{}' consumed {got_records} of {} records",
                t.name,
                t.trace.len()
            );
            mismatches += 1;
        }
        let want_fnv = format!("{:016x}", fnv1a(solo.metrics_debug.as_bytes()));
        if *got_fnv != want_fnv {
            eprintln!(
                "DETERMINISM FAILURE: tenant '{}' metrics digest {got_fnv} != solo {want_fnv}",
                t.name
            );
            mismatches += 1;
        }
        let svc = ServiceRun {
            metrics_debug: String::new(),
            epoch_lines: client.epoch_lines[i].clone(),
        };
        if svc.epoch_lines != solo.epoch_lines {
            eprintln!(
                "DETERMINISM FAILURE: tenant '{}' wire epoch series diverges \
                 ({} wire lines vs {} solo lines)",
                t.name,
                svc.epoch_lines.len(),
                solo.epoch_lines.len()
            );
            mismatches += 1;
        }
    }
    if let Some(path) = epochs_out {
        write_epochs(path, &client.epoch_lines[0]);
    }
    if mismatches > 0 {
        die(&format!("{mismatches} wire determinism mismatches"));
    }
    println!(
        "wire smoke: {tenant_count}/{tenant_count} tenants verified \
         (records, metrics digest, epoch series)"
    );
}

fn main() {
    let mut cli = cli::Parser::from_env(USAGE);
    let smoke = cli.flag("--smoke");
    let tenant_count: usize = cli
        .parsed("--tenants")
        .unwrap_or(if smoke { 8 } else { 16 });
    let workers: usize = cli.parsed("--workers").unwrap_or(8);
    let records: usize = cli.parsed("--records").unwrap_or(DEFAULT_RECORDS);
    let batch: usize = cli.parsed("--batch").unwrap_or(DEFAULT_BATCH);
    let epoch_cycles: u64 = cli.parsed("--epoch-cycles").unwrap_or(DEFAULT_EPOCH_CYCLES);
    let floor: f64 = cli.parsed("--floor").unwrap_or(MIN_PER_WORKER_RATIO);
    let womd_path = cli.value("--womd");
    let epochs_out = cli.value("--epochs-out");
    cli.finish();
    if tenant_count == 0 || records == 0 || batch == 0 || workers == 0 || epoch_cycles == 0 {
        die("--tenants, --workers, --records, --batch, and --epoch-cycles must be positive");
    }

    if smoke {
        let Some(path) = womd_path else {
            die("--smoke needs --womd PATH (the womd binary to spawn)");
        };
        run_smoke(
            &path,
            tenant_count,
            records,
            batch,
            epoch_cycles,
            epochs_out.as_deref(),
        );
    } else {
        run_benchmark(
            tenant_count,
            workers,
            records,
            batch,
            epoch_cycles,
            floor,
            epochs_out.as_deref(),
        );
    }
}
