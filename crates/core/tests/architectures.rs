//! Cross-architecture integration tests: the paper's headline orderings
//! must hold on synthetic traces.

use pcm_trace::synth::benchmarks;
use wom_pcm::{Architecture, RunMetrics, Session, SystemBuilder};

/// Runs one benchmark trace through one architecture at reduced scale.
fn run(arch: Architecture, bench: &str, n: usize) -> RunMetrics {
    let profile = benchmarks::by_name(bench).expect("paper workload");
    let trace = profile.generate(42, n);
    // Shrink the device so the test runs fast but keeps the paper's
    // rank/bank organization.
    let mut session = SystemBuilder::new(arch)
        .rows_per_bank(1024)
        .open()
        .expect("valid config");
    session.feed(&trace).expect("trace runs");
    session.finish().expect("trace finishes")
}

#[test]
fn wom_code_reduces_write_latency() {
    let base = run(Architecture::Baseline, "464.h264ref", 20_000);
    let wom = run(Architecture::WomCode, "464.h264ref", 20_000);
    let norm = wom.normalized_write_latency(&base).unwrap();
    println!("h264ref WOM-code normalized write latency: {norm:.3}");
    assert!(
        norm < 0.95,
        "WOM-code PCM must clearly beat the baseline, got {norm:.3}"
    );
}

#[test]
fn refresh_beats_plain_wom_code() {
    let base = run(Architecture::Baseline, "qsort", 20_000);
    let wom = run(Architecture::WomCode, "qsort", 20_000);
    let refresh = run(Architecture::WomCodeRefresh, "qsort", 20_000);
    let n_wom = wom.normalized_write_latency(&base).unwrap();
    let n_ref = refresh.normalized_write_latency(&base).unwrap();
    println!("qsort normalized write latency: wom={n_wom:.3} refresh={n_ref:.3}");
    assert!(
        n_ref < n_wom,
        "PCM-refresh ({n_ref:.3}) must improve on plain WOM-code ({n_wom:.3})"
    );
    assert!(
        refresh.refreshes_completed > 0,
        "the engine must actually refresh rows"
    );
}

#[test]
fn wcpcm_sits_between_refresh_and_baseline() {
    let base = run(Architecture::Baseline, "401.bzip2", 20_000);
    let wcpcm = run(Architecture::Wcpcm, "401.bzip2", 20_000);
    let n = wcpcm.normalized_write_latency(&base).unwrap();
    println!("bzip2 WCPCM normalized write latency: {n:.3}");
    assert!(n < 1.0, "WCPCM must beat the baseline, got {n:.3}");
    assert!(wcpcm.cache.is_some());
}

#[test]
fn read_latency_improves_with_write_speedups() {
    let base = run(Architecture::Baseline, "ocean", 20_000);
    let refresh = run(Architecture::WomCodeRefresh, "ocean", 20_000);
    let n = refresh.normalized_read_latency(&base).unwrap();
    println!("ocean PCM-refresh normalized read latency: {n:.3}");
    assert!(n < 1.0, "faster writes must unblock reads, got {n:.3}");
}

#[test]
fn wcpcm_hit_rate_falls_with_more_banks() {
    // Fig. 6's trend: more banks/rank -> more conflict on the per-row tag.
    let profile = benchmarks::by_name("water-ns").unwrap();
    let trace = profile.generate(7, 20_000);
    let mut rates = Vec::new();
    for banks in [4u32, 8, 16, 32] {
        let mut session = SystemBuilder::new(Architecture::Wcpcm)
            .banks_per_rank(banks)
            .rows_per_bank(1024)
            .open()
            .unwrap();
        session.feed(&trace).unwrap();
        let m = session.finish().unwrap();
        let rate = m.cache.unwrap().hit_rate();
        println!("banks/rank {banks}: hit rate {rate:.3}");
        rates.push(rate);
    }
    for w in rates.windows(2) {
        assert!(
            w[1] <= w[0] + 0.02,
            "hit rate must not rise with more banks: {rates:?}"
        );
    }
    assert!(
        rates[3] < rates[0],
        "32 banks must hit less than 4 banks: {rates:?}"
    );
}

/// Start-Gap wear leveling must spread a hammered row's writes over many
/// physical rows, dropping the wear maximum, at bounded copy overhead.
#[test]
fn wear_leveling_levels_a_hot_row() {
    use pcm_trace::{TraceOp, TraceRecord};

    // Hammer one line hard with occasional neighbours.
    let trace: Vec<TraceRecord> = (0..6_000u64)
        .map(|i| {
            let addr = if i % 8 == 0 { (i % 64) * 64 } else { 0 };
            TraceRecord::new(i * 400, addr, TraceOp::Write)
        })
        .collect();

    let run = |leveling: Option<u64>| {
        let mut builder = SystemBuilder::tiny(Architecture::WomCode);
        if let Some(interval) = leveling {
            builder = builder.wear_leveling(interval);
        }
        let mut session = builder.open().unwrap();
        session.feed(&trace).unwrap();
        session.finish().unwrap()
    };
    let plain = run(None);
    let leveled = run(Some(16));

    assert_eq!(plain.leveling_copies, 0);
    assert!(leveled.leveling_copies > 0, "gap moves must happen");
    assert!(
        leveled.wear_main.max * 2 < plain.wear_main.max,
        "hot-row wear must drop substantially: {} -> {}",
        plain.wear_main.max,
        leveled.wear_main.max
    );
    // Demand accounting is unaffected by the internal copies.
    assert_eq!(leveled.writes.count, plain.writes.count);
}

/// With `verify_data` on, every read's cells decode to the last written
/// data — including across refresh-driven row re-initializations.
#[test]
fn functional_data_verification_passes_under_refresh() {
    use pcm_trace::synth::benchmarks;

    for arch in [
        Architecture::Baseline,
        Architecture::WomCode,
        Architecture::WomCodeRefresh,
        Architecture::Wcpcm,
    ] {
        let trace = benchmarks::by_name("qsort").unwrap().generate(13, 12_000);
        let mut session = SystemBuilder::tiny(arch).verify_data(true).open().unwrap();
        session.feed(&trace).unwrap();
        let m = session.finish().unwrap();
        assert!(
            m.data_reads_verified > 1_000,
            "{arch}: expected many verified reads, got {}",
            m.data_reads_verified
        );
    }
}

/// The verification flag is rejected where it cannot work.
#[test]
fn data_verification_config_constraints() {
    let bad = SystemBuilder::tiny(Architecture::WomCode)
        .verify_data(true)
        .wear_leveling(64);
    assert!(bad.open().is_err(), "relocation invalidates reference keys");
}

/// Adversarial streams must degrade the WOM architectures gracefully,
/// never catastrophically (bounded by ~the baseline plus small refresh
/// interference).
#[test]
fn adversarial_streams_degrade_gracefully() {
    use pcm_trace::synth::adversarial;

    let cases: Vec<(&str, Vec<pcm_trace::TraceRecord>)> = vec![
        ("alpha_storm", adversarial::alpha_storm(8_000, 2, 40)),
        ("no_idle", adversarial::no_idle(8_000, 256)),
    ];
    for (name, trace) in cases {
        let run = |arch: Architecture| {
            let mut session = SystemBuilder::tiny(arch).open().unwrap();
            session.feed(&trace).unwrap();
            session.finish().unwrap()
        };
        let base = run(Architecture::Baseline);
        for arch in [
            Architecture::WomCode,
            Architecture::WomCodeRefresh,
            Architecture::Wcpcm,
        ] {
            let m = run(arch);
            // WCPCM's structural worst case is real: a dense stream with
            // zero idle funnels every write through one cache array per
            // rank (measured ~1.4x baseline on no_idle). The whole-array
            // architectures must stay within refresh-interference noise.
            let bound = if arch == Architecture::Wcpcm {
                1.6
            } else {
                1.25
            };
            if let Some(n) = m.normalized_write_latency(&base) {
                assert!(
                    n < bound,
                    "{arch} on {name}: normalized write latency {n:.3} exceeds {bound}"
                );
            }
        }
    }
}

/// The cache ping-pong stream maximizes WCPCM victim traffic: the write
/// miss rate approaches 100% and every miss writes a victim back.
#[test]
fn cache_pingpong_forces_victim_traffic() {
    use pcm_trace::synth::adversarial;
    use wom_pcm::SystemConfig;

    let cfg = SystemConfig::tiny(Architecture::Wcpcm);
    // Bank stride under the tiny geometry's default mapping
    // (offset:column:bank:rank:row): one bank = columns_per_row * 64 B.
    let stride = u64::from(cfg.mem().geometry.columns_per_row()) * 64;
    let trace = adversarial::cache_pingpong(4_000, stride, 50);
    let mut session = Session::open(cfg).unwrap();
    session.feed(&trace).unwrap();
    let m = session.finish().unwrap();
    let cache = m.cache.unwrap();
    assert!(
        cache.write_hit_rate() < 0.05,
        "ping-pong must defeat the cache, hit rate {:.3}",
        cache.write_hit_rate()
    );
    assert!(m.victim_writebacks as f64 > 0.9 * cache.write_misses as f64);
}

/// Wear leveling composes with WCPCM: victims are remapped through the
/// same Start-Gap layer and accounting stays conserved.
#[test]
fn wear_leveling_composes_with_wcpcm() {
    use pcm_trace::synth::benchmarks;

    let trace = benchmarks::by_name("qsort").unwrap().generate(21, 8_000);
    let mut session = SystemBuilder::tiny(Architecture::Wcpcm)
        .wear_leveling(32)
        .open()
        .unwrap();
    session.feed(&trace).unwrap();
    let m = session.finish().unwrap();
    let writes = trace
        .iter()
        .filter(|r| r.op == pcm_trace::TraceOp::Write)
        .count() as u64;
    assert_eq!(m.writes.count, writes);
    assert!(m.cache.is_some());
    // Main-memory wear = victims + leveling copies under WCPCM.
    assert_eq!(m.wear_main.writes, m.victim_writebacks + m.leveling_copies);
}

/// Charging the hidden-page companion accesses must cost real time (the
/// assumption the paper's timing-equivalence rests on), and requires the
/// hidden-page organization.
#[test]
fn hidden_page_charge_is_visible_and_validated() {
    use pcm_trace::synth::benchmarks;
    use wom_pcm::Organization;

    let trace = benchmarks::by_name("mad").unwrap().generate(5, 8_000);
    let run = |charge: bool| {
        let mut session = SystemBuilder::tiny(Architecture::WomCode)
            .organization(Organization::HiddenPage)
            .charge_hidden_page_traffic(charge)
            .open()
            .unwrap();
        session.feed(&trace).unwrap();
        session.finish().unwrap()
    };
    let free = run(false);
    let charged = run(true);
    assert_eq!(free.hidden_page_accesses, 0);
    assert!(charged.hidden_page_accesses > 0);
    assert!(
        charged.writes.mean() > free.writes.mean(),
        "companion writes must cost time: {} vs {}",
        charged.writes.mean(),
        free.writes.mean()
    );

    // The flag is rejected without the hidden-page organization.
    let bad = SystemBuilder::tiny(Architecture::WomCode).charge_hidden_page_traffic(true);
    assert!(bad.open().is_err());
}
