//! `determinism/banned-type` and `determinism/banned-path`: no hash
//! collections, wall-clock, environment, or foreign-RNG reads in
//! simulation-state crates.

use crate::config::Config;
use crate::scan::{self, FileScan};
use crate::{push, Diagnostic, Report, RULE_BANNED_PATH, RULE_BANNED_TYPE};

/// Checks one file of a determinism-scoped crate.
pub fn check(cfg: &Config, scan: &FileScan, file: &str, report: &mut Report) {
    let allowlisted = |token: &str| {
        cfg.det_allow
            .iter()
            .any(|a| a.file == file && a.token == token)
    };
    for hit in scan::find_idents(&scan.tokens, &cfg.banned_types) {
        if allowlisted(&hit.pattern) {
            report.suppressed.push(Diagnostic {
                rule: RULE_BANNED_TYPE.into(),
                file: file.into(),
                line: hit.line,
                message: format!("`{}` allowlisted in womlint.toml", hit.pattern),
            });
            continue;
        }
        push(
            report,
            scan,
            Diagnostic {
                rule: RULE_BANNED_TYPE.into(),
                file: file.into(),
                line: hit.line,
                message: format!(
                    "`{}` in simulation state code: iteration order is not \
                     deterministic (or invites order-dependent refactors) — use \
                     `wom_pcm::rowmap::RowMap` for row-keyed state or `BTreeMap` \
                     for other keys, or justify with a womlint::allow",
                    hit.pattern
                ),
            },
        );
    }
    for hit in scan::find_paths(&scan.tokens, &cfg.banned_paths) {
        if allowlisted(&hit.pattern) {
            report.suppressed.push(Diagnostic {
                rule: RULE_BANNED_PATH.into(),
                file: file.into(),
                line: hit.line,
                message: format!("`{}` allowlisted in womlint.toml", hit.pattern),
            });
            continue;
        }
        push(
            report,
            scan,
            Diagnostic {
                rule: RULE_BANNED_PATH.into(),
                file: file.into(),
                line: hit.line,
                message: format!(
                    "`{}` breaks bit-reproducibility: simulation crates must not \
                     read wall-clock time, the environment, or any RNG other than \
                     `pcm-rng`",
                    hit.pattern
                ),
            },
        );
    }
}
