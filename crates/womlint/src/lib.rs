//! `womlint` — the repo's in-tree static-analysis pass.
//!
//! Three PRs' worth of implicit contracts — bit-determinism, an
//! allocation-free hot path, and a shrinking panic surface — are cheap to
//! break silently: the compiler cannot see them. `womlint` walks every
//! crate's library source (token-level; the workspace is offline, so no
//! `syn`) and enforces the rules declared in `womlint.toml`:
//!
//! * **determinism** — ban `HashMap`/`HashSet`/`BTreeSet` (and wall-clock,
//!   env, foreign-RNG paths) in simulation-state crates; row-keyed state
//!   must use `wom_pcm::rowmap::RowMap` or key-ordered structures.
//! * **hotpath** — ban allocating calls inside modules/functions tagged
//!   hot in `womlint.toml` (engine tick, codec row paths, refresh loops).
//! * **panic** — inventory `unwrap()`/`expect()`/`panic!`/index
//!   expressions in library code against a ratcheting baseline, so the
//!   count can only go down.
//!
//! Violations can be suppressed in place with
//! `// womlint::allow(<rule>, reason = "...")`; a suppression without a
//! reason is itself a violation. See `DESIGN.md` §9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod toml;

use callgraph::{FileUnit, Workspace};
use config::{Baseline, Config, PanicCounts};
use scan::FileScan;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule ID for banned collection types in determinism crates.
pub const RULE_BANNED_TYPE: &str = "determinism/banned-type";
/// Rule ID for banned paths (wall-clock, env, foreign RNG).
pub const RULE_BANNED_PATH: &str = "determinism/banned-path";
/// Rule ID for allocating calls in hot-region root functions.
pub const RULE_HOTPATH_ALLOC: &str = "hotpath/alloc";
/// Rule ID for allocating calls in functions *reachable* from a hot
/// region root through the call graph.
pub const RULE_HOTPATH_TRANSITIVE: &str = "hotpath/transitive";
/// Rule ID for calls through non-path expressions (`(self.cb)(...)`)
/// inside the hot closure — the call graph cannot follow them, so they
/// are surfaced once instead of silently ignored.
pub const RULE_HOTPATH_DYNAMIC: &str = "hotpath/dynamic-call";
/// Rule ID for snap-codec field-coverage gaps (a declared field neither
/// referenced by `save_state`/`load_state`/`restore_state` nor
/// allow-listed).
pub const RULE_SNAPSHOT_COVERAGE: &str = "snapshot/field-coverage";
/// Rule ID for merge field-coverage gaps (a declared field not
/// referenced by a `merge`/`merge_disjoint` implementation).
pub const RULE_MERGE_COVERAGE: &str = "merge/field-coverage";
/// Rule ID for `womlint.toml` entries naming files/functions/fields that
/// no longer exist.
pub const RULE_CONFIG_STALE: &str = "config/stale-region";
/// Rule ID for `womlint::allow` comments that no longer suppress
/// anything.
pub const RULE_SUPPRESSION_UNUSED: &str = "suppression/unused";
/// Rule ID for panic-inventory regressions against the baseline.
pub const RULE_PANIC_RATCHET: &str = "panic/ratchet";
/// Rule ID for `womlint::allow` comments missing a reason.
pub const RULE_SUPPRESSION_REASON: &str = "suppression/missing-reason";
/// Rule ID for `womlint::allow` naming an unknown rule.
pub const RULE_SUPPRESSION_UNKNOWN: &str = "suppression/unknown-rule";

/// Every suppressible rule ID (`panic/ratchet`, `config/stale-region`,
/// and the suppression rules themselves are aggregate/meta diagnostics
/// and cannot be allowed away).
pub const SUPPRESSIBLE_RULES: &[&str] = &[
    RULE_BANNED_TYPE,
    RULE_BANNED_PATH,
    RULE_HOTPATH_ALLOC,
    RULE_HOTPATH_TRANSITIVE,
    RULE_HOTPATH_DYNAMIC,
    RULE_SNAPSHOT_COVERAGE,
    RULE_MERGE_COVERAGE,
];

/// One diagnostic, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `determinism/banned-type`.
    pub rule: String,
    /// File path relative to the workspace root (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations; non-empty means exit non-zero.
    pub violations: Vec<Diagnostic>,
    /// Violations silenced by a well-formed `womlint::allow`.
    pub suppressed: Vec<Diagnostic>,
    /// Current panic inventory per crate (only crates under the rule).
    pub inventory: BTreeMap<String, PanicCounts>,
    /// Files scanned.
    pub files_scanned: usize,
    /// `(file, comment line)` of every inline suppression that silenced
    /// at least one diagnostic — the complement feeds
    /// `suppression/unused`.
    pub used_suppressions: BTreeSet<(String, u32)>,
}

impl Report {
    /// True when the scan found no unsuppressed violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scan error (I/O or configuration).
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for LintError {}

impl From<config::ConfigError> for LintError {
    fn from(e: config::ConfigError) -> Self {
        LintError(e.to_string())
    }
}

/// Runs every rule over the workspace at `root`.
///
/// Two passes: first every in-scope file is lexed, test-stripped, and
/// item-parsed into a [`callgraph::Workspace`]; then the rules run over
/// the whole model (the interprocedural rules — hot-path closure and
/// field coverage — need cross-file visibility).
///
/// `baseline` is compared against the measured panic inventory when
/// present; pass `None` when regenerating the baseline.
pub fn run(root: &Path, cfg: &Config, baseline: Option<&Baseline>) -> Result<Report, LintError> {
    let mut report = Report::default();
    let mut units: Vec<FileUnit> = Vec::new();
    for krate in &cfg.scope {
        let src_dir = root.join(&krate.path).join("src");
        let files = rust_files(&src_dir)
            .map_err(|e| LintError(format!("walking {}: {e}", src_dir.display())))?;
        let mut counts = PanicCounts::default();
        let in_panic_scope = cfg.panic_crates.iter().any(|c| c == &krate.name);
        for file in files {
            let rel = relative_display(root, &file);
            let src = std::fs::read_to_string(&file)
                .map_err(|e| LintError(format!("reading {rel}: {e}")))?;
            let scan = scan::scan(&src);
            report.files_scanned += 1;
            if in_panic_scope {
                let sites = scan::panic_sites(&scan.tokens);
                counts.unwrap += sites.unwrap.len() as u64;
                counts.expect += sites.expect.len() as u64;
                counts.panic += sites.panic.len() as u64;
                counts.index += sites.index.len() as u64;
            }
            let items = parse::parse_items(&scan.tokens);
            units.push(FileUnit {
                path: rel,
                krate: krate.name.clone(),
                scan,
                items,
            });
        }
        if in_panic_scope {
            report.inventory.insert(krate.name.clone(), counts);
        }
    }
    let ws = Workspace::new(units);
    for unit in &ws.files {
        rules::suppression::check_comments(&unit.scan, &unit.path, &mut report);
        if cfg.determinism_crates.iter().any(|c| c == &unit.krate) {
            rules::determinism::check(cfg, &unit.scan, &unit.path, &mut report);
        }
    }
    rules::hotpath::check(cfg, &ws, &mut report);
    rules::coverage::check(cfg, &ws, &mut report);
    rules::config_check::check(cfg, &ws, &mut report);
    if let Some(baseline) = baseline {
        rules::ratchet::check(cfg, baseline, &mut report);
    }
    // Last: needs the used-suppression records of every rule above.
    rules::suppression::check_unused(&ws, &mut report);
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// All `.rs` files under `dir` (recursive, sorted for determinism),
/// excluding `bin/` — binaries are operator tooling, not simulation
/// library code.
fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if !d.exists() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "bin") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_display(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Routes a diagnostic: a suppressible rule covered by an inline
/// `womlint::allow` lands in `suppressed` (and records the suppression
/// as used); everything else is a violation.
pub(crate) fn push(report: &mut Report, scan: &FileScan, diag: Diagnostic) {
    if SUPPRESSIBLE_RULES.contains(&diag.rule.as_str()) {
        if let Some(s) = scan.suppression_covering(&diag.rule, diag.line) {
            report.used_suppressions.insert((diag.file.clone(), s.line));
            report.suppressed.push(diag);
            return;
        }
    }
    report.violations.push(diag);
}

/// Renders the report as JSON for CI consumption. Hand-rolled — the
/// workspace is offline, so no `serde`.
#[must_use]
pub fn to_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn diag_json(d: &Diagnostic) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(&d.rule),
            esc(&d.file),
            d.line,
            esc(&d.message)
        )
    }
    let violations: Vec<String> = report.violations.iter().map(diag_json).collect();
    let suppressed: Vec<String> = report.suppressed.iter().map(diag_json).collect();
    let inventory: Vec<String> = report
        .inventory
        .iter()
        .map(|(krate, c)| {
            format!(
                "\"{}\":{{\"unwrap\":{},\"expect\":{},\"panic\":{},\"index\":{},\"total\":{}}}",
                esc(krate),
                c.unwrap,
                c.expect,
                c.panic,
                c.index,
                c.total()
            )
        })
        .collect();
    format!(
        "{{\n  \"violations\": [{}],\n  \"suppressed\": [{}],\n  \"panic_inventory\": {{{}}},\n  \"summary\": {{\"violations\": {}, \"suppressed\": {}, \"files_scanned\": {}}}\n}}\n",
        violations.join(","),
        suppressed.join(","),
        inventory.join(","),
        report.violations.len(),
        report.suppressed.len(),
        report.files_scanned
    )
}
