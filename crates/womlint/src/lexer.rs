//! A minimal token-level Rust lexer — just enough syntax awareness to
//! scan for banned identifiers, paths, and call shapes without pulling a
//! full parser (the workspace is offline; no `syn`).
//!
//! The lexer distinguishes identifiers, punctuation, literals, and
//! lifetimes, tracks the 1-based line of every token, skips comments
//! (collecting them separately so suppression comments like
//! `// womlint::allow(rule, reason = "...")` can be parsed), and never
//! looks inside string/char literals — `"HashMap"` in a diagnostic
//! message must not trip the determinism rule.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and text.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Kinds of token the scanner distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#match` → `match`).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `(`, `[`, `!`, ...).
    Punct(char),
    /// String, char, byte, or numeric literal (content discarded).
    Literal,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A comment captured during lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments and literals.
    pub tokens: Vec<Token>,
    /// All comments (line and block), in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated constructs are tolerated (the lexer
/// consumes to end-of-file); this is a linter, not a compiler.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    text: src[start..j].trim().to_string(),
                    line,
                });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].trim().to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'"' => {
                i = skip_string(bytes, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let tok_line = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a` not followed by a closing quote) or char
                // literal (`'a'`, `'\n'`).
                let next = bytes.get(i + 1).copied();
                let is_lifetime = matches!(next, Some(n) if n == b'_' || n.is_ascii_alphabetic())
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    i = skip_char_literal(bytes, i + 1, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                }
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..j].to_string()),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
                {
                    // `0..10` range: stop the numeric literal at `..`.
                    if bytes[j] == b'.' && bytes.get(j + 1) == Some(&b'.') {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            _ => {
                // `r#ident` raw identifiers: lex as the bare identifier.
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | b"..." | rb is not valid Rust.
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        raw = true;
        i += 1;
    }
    if !raw {
        // b"..." — ordinary escape rules.
        debug_assert_eq!(bytes.get(i), Some(&b'"'));
        return skip_string(bytes, i + 1, line);
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // `r#ident` raw identifier, not a string: caller treated `r` as the
        // start of a string; re-lex conservatively by skipping just `r#`.
        return i;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_char_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_hide_their_contents() {
        assert_eq!(idents(r#"let x = "HashMap"; "#), vec!["let", "x"]);
        assert_eq!(idents(r##"let y = r#"HashSet"#; "##), vec!["let", "y"]);
        assert_eq!(idents("let c = 'H';"), vec!["let", "c"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// womlint::allow(x, reason = \"y\")\nfn f() {}\n/* HashMap */");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.kind != TokenKind::Ident("HashMap".into())));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.starts_with("womlint::allow"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn lines_are_tracked_across_block_comments_and_strings() {
        let l = lex("/* a\nb */\nfn f() {\n  \"x\ny\";\n  g();\n}");
        let g = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("g".into()))
            .unwrap();
        assert_eq!(g.line, 6);
    }

    #[test]
    fn numeric_ranges_do_not_swallow_dots() {
        let l = lex("for i in 0..10 {}");
        let dots = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }
}
