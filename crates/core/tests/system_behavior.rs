//! End-to-end behaviour of the four architectures through the public
//! facade: coalescing, refresh scheduling, cache routing. (Moved out of
//! the old monolithic `system.rs` when it was split into the engine and
//! the policy layer.)

use pcm_sim::{Cycle, DecodedAddr};
use pcm_trace::{TraceOp, TraceRecord};
use wom_pcm::{Architecture, SystemConfig, WomPcmSystem};

fn record(cycle: Cycle, addr: u64, op: TraceOp) -> TraceRecord {
    TraceRecord::new(cycle, addr, op)
}

#[test]
fn write_coalescing_merges_back_to_back_row_writes() {
    let mut sys = WomPcmSystem::new(SystemConfig::tiny(Architecture::Baseline)).unwrap();
    // Two writes to the same row, 4 cycles apart: the second lands
    // while the first row write is still in flight.
    sys.submit(record(0, 0x00, TraceOp::Write)).unwrap();
    sys.submit(record(4, 0x40, TraceOp::Write)).unwrap();
    let m = sys.finish().unwrap();
    assert_eq!(m.coalesced_writes, 1);
    assert_eq!(m.slow_writes, 1, "one array write for the merged pair");
}

#[test]
fn distant_writes_do_not_coalesce() {
    let mut sys = WomPcmSystem::new(SystemConfig::tiny(Architecture::Baseline)).unwrap();
    sys.submit(record(0, 0x00, TraceOp::Write)).unwrap();
    sys.submit(record(10_000, 0x40, TraceOp::Write)).unwrap();
    let m = sys.finish().unwrap();
    assert_eq!(m.coalesced_writes, 0);
    assert_eq!(m.slow_writes, 2);
}

#[test]
fn wcpcm_tag_conflict_blocks_coalescing() {
    let mut sys = WomPcmSystem::new(SystemConfig::tiny(Architecture::Wcpcm)).unwrap();
    let g = sys.config().mem().geometry;
    let dec = pcm_sim::AddressDecoder::new(g, sys.config().mem().mapping).unwrap();
    // Same (rank, row) but different banks: must not merge - the
    // second write evicts the first bank's data instead.
    let a = dec
        .encode(DecodedAddr {
            rank: 0,
            bank: 0,
            row: 0,
            column: 0,
        })
        .unwrap();
    let b = dec
        .encode(DecodedAddr {
            rank: 0,
            bank: 1,
            row: 0,
            column: 0,
        })
        .unwrap();
    sys.submit(record(0, a, TraceOp::Write)).unwrap();
    sys.submit(record(2, b, TraceOp::Write)).unwrap();
    let m = sys.finish().unwrap();
    assert_eq!(m.coalesced_writes, 0);
    assert_eq!(m.victim_writebacks, 1);
    assert_eq!(m.cache.unwrap().write_misses, 1);
}

#[test]
fn refresh_engine_runs_during_idle_gaps() {
    let mut sys = WomPcmSystem::new(SystemConfig::tiny(Architecture::WomCodeRefresh)).unwrap();
    // Exhaust a row's budget (steady-state cold may need 1-2 writes),
    // then idle long enough for several refresh periods.
    for i in 0..4u64 {
        sys.submit(record(i * 2_000, 0x00, TraceOp::Write)).unwrap();
    }
    sys.submit(record(200_000, 0x1000, TraceOp::Read)).unwrap();
    let m = sys.finish().unwrap();
    assert!(
        m.refreshes_completed > 0,
        "an idle stretch after exhausting writes must trigger refresh"
    );
}

#[test]
fn wcpcm_read_hits_are_served_without_touching_main_wear() {
    let mut sys = WomPcmSystem::new(SystemConfig::tiny(Architecture::Wcpcm)).unwrap();
    sys.submit(record(0, 0x80, TraceOp::Write)).unwrap();
    sys.submit(record(5_000, 0x80, TraceOp::Read)).unwrap();
    let m = sys.finish().unwrap();
    let cache = m.cache.unwrap();
    assert_eq!(cache.read_hits, 1);
    assert_eq!(cache.read_misses, 0);
    assert_eq!(
        m.wear_main.writes, 0,
        "no victim, so main memory was never written"
    );
}
