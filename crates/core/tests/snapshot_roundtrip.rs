//! Checkpoint/resume correctness: interrupting a run with a `WOMSNAP`
//! checkpoint and resuming in a fresh session must be invisible — the
//! resumed run's metrics and epoch series are `{:#?}`-byte-identical to
//! the uninterrupted run, for every architecture.
//!
//! Also pins the container format with one golden `.womsnap` fixture per
//! architecture (checkpoints of a deterministic run must be byte-identical
//! across builds), and checks that damaged containers fail with typed
//! errors, mirroring the `WOMTRC` truncation semantics. Regenerate the
//! fixtures after an intentional format or model change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wom-pcm --test snapshot_roundtrip
//! ```

use pcm_trace::synth::{Suite, WorkloadProfile};
use pcm_trace::TraceRecord;
use std::path::PathBuf;
use wom_pcm::snapshot::{self, SnapshotError};
use wom_pcm::{Architecture, Session, SystemBuilder, SystemConfig, WomPcmError};

const RECORDS: usize = 6_000;
const SEED: u64 = 2014;
/// Checkpoint point: mid-run, with transactions in flight on every
/// architecture.
const SPLIT: usize = 2_700;

/// A fixed workload whose footprint fits the tiny geometry, with enough
/// write recurrence to drive every architecture's machinery (same shape
/// as the golden-metrics workload).
fn workload() -> WorkloadProfile {
    WorkloadProfile {
        name: "snapshot".into(),
        suite: Suite::SpecCpu2006,
        read_fraction: 0.55,
        working_set_bytes: 32 * 1024,
        hot_fraction: 0.6,
        hot_set_fraction: 0.15,
        sequential_run: 0.3,
        row_rewrite_prob: 0.55,
        read_reuse_prob: 0.25,
        mean_gap_cycles: 40.0,
        burst_len: 4,
        reuse_window: 48,
        scatter_pages: false,
    }
}

fn config(arch: Architecture) -> SystemConfig {
    // Epoch observation on, so the checkpoint also carries (and the test
    // also compares) the mid-run time series.
    SystemBuilder::tiny(arch).epoch_cycles(10_000).into_config()
}

fn trace() -> Vec<TraceRecord> {
    workload().generate(SEED, RECORDS)
}

/// Runs `cfg` over `records` uninterrupted; returns the `{:#?}` of the
/// final metrics and of the epoch series.
fn run_straight(cfg: &SystemConfig, records: &[TraceRecord]) -> (String, String) {
    let mut session = Session::open(cfg.clone()).expect("valid config");
    session.feed(records).expect("runs");
    let metrics = session.finish().expect("finishes");
    let epochs = session.into_epochs().expect("epochs enabled");
    (format!("{metrics:#?}"), format!("{epochs:#?}"))
}

/// Runs `cfg` over `records`, checkpointing at `split` and resuming in a
/// fresh session; returns the same renderings plus the container bytes.
fn run_interrupted(
    cfg: &SystemConfig,
    records: &[TraceRecord],
    split: usize,
) -> (String, String, Vec<u8>) {
    let mut session = Session::open(cfg.clone()).expect("valid config");
    session.feed(&records[..split]).expect("feeds");
    let container = session.checkpoint().expect("checkpoints");
    drop(session);

    let mut resumed = Session::resume(cfg.clone(), &container).expect("restores");
    let consumed = resumed.records_fed();
    assert_eq!(consumed, split as u64, "records_consumed round-trips");
    resumed.feed(&records[consumed as usize..]).expect("feeds");
    let metrics = resumed.finish().expect("finishes");
    let epochs = resumed.into_epochs().expect("epochs enabled");
    (format!("{metrics:#?}"), format!("{epochs:#?}"), container)
}

#[test]
fn resume_is_bit_identical_for_all_architectures() {
    let records = trace();
    for arch in Architecture::all_paper() {
        let cfg = config(arch);
        let (straight_metrics, straight_epochs) = run_straight(&cfg, &records);
        let (resumed_metrics, resumed_epochs, _) = run_interrupted(&cfg, &records, SPLIT);
        assert_eq!(
            resumed_metrics, straight_metrics,
            "{arch:?}: resumed metrics diverge from the uninterrupted run"
        );
        assert_eq!(
            resumed_epochs, straight_epochs,
            "{arch:?}: resumed epoch series diverges"
        );
    }
}

#[test]
fn resume_preserves_wear_leveling_and_data_verification() {
    let records = trace();
    // Start-Gap remappers ride the checkpoint...
    let leveled = SystemBuilder::tiny(Architecture::WomCode)
        .wear_leveling(64)
        .into_config();
    // ...and so do the functional checker's cells and references.
    let verified = SystemBuilder::tiny(Architecture::WomCodeRefresh)
        .verify_data(true)
        .into_config();
    for cfg in [leveled, verified] {
        let mut session = Session::open(cfg.clone()).expect("valid config");
        session.feed(&records).expect("runs");
        let straight = format!("{:#?}", session.finish().expect("finishes"));
        let mut session = Session::open(cfg.clone()).expect("valid config");
        session.feed(&records[..SPLIT]).expect("feeds");
        let container = session.checkpoint().expect("checkpoints");
        let mut resumed = Session::resume(cfg.clone(), &container).expect("restores");
        resumed.feed(&records[SPLIT..]).expect("feeds");
        let metrics = format!("{:#?}", resumed.finish().expect("finishes"));
        assert_eq!(metrics, straight, "{:?} diverged", cfg.wear_leveling());
    }
}

#[test]
fn snapshot_twice_is_byte_identical() {
    let records = trace();
    let cfg = config(Architecture::Wcpcm);
    let snap = |()| {
        let mut session = Session::open(cfg.clone()).expect("valid config");
        session.feed(&records[..SPLIT]).expect("feeds");
        session.checkpoint().expect("checkpoints")
    };
    assert_eq!(snap(()), snap(()), "checkpoint bytes are deterministic");
}

fn fixture_path(arch: Architecture) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.womsnap", arch.slug()))
}

#[test]
fn golden_womsnap_fixtures_stay_stable() {
    let records = trace();
    for arch in Architecture::all_paper() {
        let cfg = config(arch);
        let (_, _, container) = run_interrupted(&cfg, &records, SPLIT);
        let path = fixture_path(arch);
        // GOLDEN_REGEN gates regeneration of the checked-in files; it
        // never affects a verifying run, so the env ban does not apply.
        #[allow(clippy::disallowed_methods)]
        let regen = std::env::var_os("GOLDEN_REGEN").is_some();
        if regen {
            std::fs::write(&path, &container).expect("fixture written");
            continue;
        }
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); regenerate with \
                 GOLDEN_REGEN=1 cargo test -p wom-pcm --test snapshot_roundtrip",
                path.display()
            )
        });
        assert_eq!(
            container,
            golden,
            "{arch:?}: checkpoint bytes drifted from {}; if the change is \
             intentional, regenerate with GOLDEN_REGEN=1",
            path.display()
        );
        // The committed container must still decode and resume.
        let mut resumed = Session::resume(cfg.clone(), &golden).expect("golden restores");
        let consumed = resumed.records_fed();
        resumed.feed(&records[consumed as usize..]).expect("feeds");
        resumed.finish().expect("finishes");
    }
}

#[test]
fn damaged_containers_fail_with_typed_errors() {
    let records = trace();
    let cfg = config(Architecture::WomCodeRefresh);
    let (_, _, container) = run_interrupted(&cfg, &records, SPLIT);

    // Foreign bytes.
    assert!(matches!(
        snapshot::decode_container(b"WOMTRC\x00\x02not a snapshot"),
        Err(SnapshotError::BadMagic)
    ));

    // Truncation anywhere fails with a typed error before any state is
    // touched (mirrors `BinaryTraceError::Truncated`).
    for cut in [5, 20, 40, container.len() / 2, container.len() - 1] {
        match Session::resume(cfg.clone(), &container[..cut]) {
            Err(WomPcmError::Snapshot(
                SnapshotError::Truncated { .. } | SnapshotError::BadMagic,
            )) => {}
            Err(other) => panic!("cut at {cut}: expected typed truncation, got {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated container restored"),
        }
    }

    // A flipped payload bit fails the CRC.
    let mut corrupt = container.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x10;
    assert!(matches!(
        Session::resume(cfg.clone(), &corrupt),
        Err(WomPcmError::Snapshot(SnapshotError::BadChecksum))
    ));

    // Restoring under a different configuration is rejected up front.
    let other_cfg = SystemBuilder::tiny(Architecture::WomCodeRefresh)
        .epoch_cycles(10_000)
        .rewrite_limit(cfg.rewrite_limit() + 1)
        .into_config();
    assert!(matches!(
        Session::resume(other_cfg, &container),
        Err(WomPcmError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
    // ...including the same parameters under a different architecture.
    assert!(matches!(
        Session::resume(config(Architecture::WomCode), &container),
        Err(WomPcmError::Snapshot(SnapshotError::ConfigMismatch { .. }))
    ));
}
