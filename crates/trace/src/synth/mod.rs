//! Synthetic memory-trace generation.
//!
//! The paper drives its simulator with Pin-captured traces of SPEC
//! CPU2006, MiBench, and SPLASH-2 runs. Those captures are not
//! redistributable, so this module synthesizes address streams with the
//! properties the paper's mechanisms actually react to:
//!
//! * **read/write mix** — decides how much writes can matter at all;
//! * **row rewrite recurrence** — how soon a written row is written again,
//!   which drives WOM rewrite-budget consumption and α-write frequency;
//! * **spatial locality** (sequential runs, hot sets) — drives row-buffer
//!   and WOM-cache behaviour;
//! * **memory intensity** (inter-arrival gaps, burstiness) — drives
//!   rank idleness and therefore PCM-refresh opportunity.
//!
//! Each of the paper's 20 benchmarks has a [`WorkloadProfile`] in
//! [`benchmarks`] whose knobs are set from the suites' published
//! characterizations (embedded MiBench codes are low-intensity with small
//! footprints; SPLASH-2 kernels are high-intensity with little idleness;
//! SPEC is in between, with `464.h264ref` notably write-recurrent).

pub mod adversarial;
pub mod benchmarks;
pub mod datacenter;

use crate::record::{TraceOp, TraceRecord};
use pcm_rng::Rng;
use std::collections::VecDeque;

/// Cache-line granularity of generated addresses.
pub const LINE_BYTES: u64 = 64;

/// Page granularity of the address scatter (one OS page).
pub const PAGE_BYTES: u64 = 4096;

/// Physical address space pages are scattered into (the paper's 16 GiB
/// device).
pub const ADDRESS_SPACE_BYTES: u64 = 16 << 30;

/// Deterministic page scatter: maps a virtual page number to a pseudo-
/// random physical page, modelling the OS's virtual-to-physical mapping.
/// Without it a workload's pages would pack into contiguous low physical
/// addresses — an unrealistic layout that aliases every hot page onto the
/// same few row indices of every bank.
fn scatter_page(page: u64) -> u64 {
    let mut z = page.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z % (ADDRESS_SPACE_BYTES / PAGE_BYTES)
}

/// Knobs describing one workload's memory behaviour.
///
/// Probabilities are in `[0, 1]`; see the module docs for what each knob
/// exercises in the WOM-code PCM architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `"464.h264ref"`).
    pub name: String,
    /// Benchmark suite the profile models.
    pub suite: Suite,
    /// Probability an access is a read.
    pub read_fraction: f64,
    /// Memory footprint in bytes; generated addresses stay within it.
    pub working_set_bytes: u64,
    /// Probability a non-sequential access targets the hot subset.
    pub hot_fraction: f64,
    /// Size of the hot subset as a fraction of the working set.
    pub hot_set_fraction: f64,
    /// Probability of continuing a sequential run (next cache line).
    pub sequential_run: f64,
    /// Probability a write revisits a recently written row.
    pub row_rewrite_prob: f64,
    /// Probability a read targets a recently written row (read-after-write
    /// locality: the accesses that queue behind long PCM writes).
    pub read_reuse_prob: f64,
    /// Mean idle gap between access bursts, in memory-controller cycles.
    pub mean_gap_cycles: f64,
    /// Number of back-to-back accesses per burst.
    pub burst_len: u32,
    /// How many recently written rows stay reusable. Larger windows spread
    /// row rewrites over longer intervals, giving PCM-refresh time to act
    /// between a row reaching its limit and its next rewrite.
    pub reuse_window: usize,
    /// Scatter pages across the physical address space (modelling an OS
    /// with a fragmented page pool). The paper's Pin traces carry
    /// contiguous (virtual) addresses, so the default is `false`; see
    /// `DESIGN.md` for the ablation this knob supports.
    pub scatter_pages: bool,
}

/// The benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (general-purpose).
    SpecCpu2006,
    /// MiBench (embedded).
    MiBench,
    /// SPLASH-2 (high-performance / parallel).
    Splash2,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SpecCpu2006 => f.write_str("SPEC CPU2006"),
            Self::MiBench => f.write_str("MiBench"),
            Self::Splash2 => f.write_str("SPLASH-2"),
        }
    }
}

impl WorkloadProfile {
    /// Validates every knob's range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("read_fraction", self.read_fraction),
            ("hot_fraction", self.hot_fraction),
            ("hot_set_fraction", self.hot_set_fraction),
            ("sequential_run", self.sequential_run),
            ("row_rewrite_prob", self.row_rewrite_prob),
            ("read_reuse_prob", self.read_reuse_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1], got {p}"));
            }
        }
        if self.working_set_bytes < LINE_BYTES {
            return Err(format!(
                "working_set_bytes must be at least one line ({LINE_BYTES} B)"
            ));
        }
        if self.mean_gap_cycles < 0.0 {
            return Err(format!(
                "mean_gap_cycles must be non-negative, got {}",
                self.mean_gap_cycles
            ));
        }
        if self.burst_len == 0 {
            return Err("burst_len must be positive".into());
        }
        if self.reuse_window == 0 {
            return Err("reuse_window must be positive".into());
        }
        Ok(())
    }

    /// Creates a deterministic generator for this profile.
    ///
    /// The same `(profile, seed)` pair always produces the identical
    /// stream, so experiments are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`validate`](Self::validate).
    #[must_use]
    pub fn generator(&self, seed: u64) -> SyntheticTrace {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", self.name));
        SyntheticTrace::new(self.clone(), seed)
    }

    /// Convenience: materializes `n` records.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`validate`](Self::validate).
    #[must_use]
    pub fn generate(&self, seed: u64, n: usize) -> Vec<TraceRecord> {
        self.generator(seed).take(n).collect()
    }

    /// Lazy counterpart of [`generate`](Self::generate): a chunked,
    /// resettable [`crate::stream::TraceSource`] yielding the identical
    /// `records` records without materializing them.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`validate`](Self::validate).
    #[must_use]
    pub fn generate_stream(
        &self,
        seed: u64,
        records: u64,
    ) -> crate::stream::IterSource<SyntheticTrace> {
        crate::stream::IterSource::new(self.generator(seed), records)
    }
}

/// How many of the newest writes a read-after-write access may target.
const READ_REUSE_DEPTH: usize = 16;

/// Infinite iterator of [`TraceRecord`]s following a [`WorkloadProfile`].
///
/// ```
/// use pcm_trace::synth::benchmarks;
///
/// let profile = benchmarks::by_name("qsort").unwrap();
/// let records: Vec<_> = profile.generator(42).take(1000).collect();
/// assert_eq!(records.len(), 1000);
/// // Deterministic for a fixed seed:
/// assert_eq!(records, profile.generator(42).take(1000).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: WorkloadProfile,
    rng: Rng,
    cycle: u64,
    last_line: u64,
    burst_left: u32,
    recent_lines: VecDeque<u64>,
}

impl SyntheticTrace {
    fn new(profile: WorkloadProfile, seed: u64) -> Self {
        // Mix the workload name into the seed so different benchmarks with
        // the same user seed do not correlate.
        let mut mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in profile.name.bytes() {
            mixed = mixed.rotate_left(8) ^ u64::from(b).wrapping_mul(0x100_0000_01B3);
        }
        let burst_left = profile.burst_len;
        let window = profile.reuse_window;
        Self {
            rng: Rng::seed_from_u64(mixed),
            cycle: 0,
            last_line: 0,
            burst_left,
            recent_lines: VecDeque::with_capacity(window),
            profile,
        }
    }

    /// The profile driving this generator.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn lines(&self) -> u64 {
        (self.profile.working_set_bytes / LINE_BYTES).max(1)
    }

    /// Geometric inter-burst gap with the configured mean.
    fn sample_gap(&mut self) -> u64 {
        let mean = self.profile.mean_gap_cycles;
        if mean <= 0.0 {
            return 0;
        }
        // Inverse-CDF exponential, rounded; deterministic via the seeded
        // generator.
        let u: f64 = self.rng.gen_f64_range(f64::EPSILON, 1.0);
        (-mean * u.ln()).round() as u64
    }

    fn pick_line(&mut self, op: TraceOp) -> u64 {
        let lines = self.lines();
        let p = &self.profile;
        // Sequential run continuation.
        if self.rng.gen_bool(p.sequential_run) {
            self.last_line = (self.last_line + 1) % lines;
            return self.last_line;
        }
        // Recently-written-line recurrence: in-place rewrites (consuming
        // the WOM budget of exactly the columns written before, as frame
        // buffers and in-place data structures do) and read-after-write
        // locality (reads that contend with in-flight writes for the same
        // bank).
        let reuse_prob = if op == TraceOp::Write {
            p.row_rewrite_prob
        } else {
            p.read_reuse_prob
        };
        if !self.recent_lines.is_empty() && self.rng.gen_bool(reuse_prob) {
            // Writes rewrite lines from anywhere in the window (in-place
            // data structures revisited over a long period); reads reuse
            // the *newest* writes (read-after-write dependences), which is
            // what makes them queue behind still-in-flight slow writes.
            let span = if op == TraceOp::Write {
                self.recent_lines.len()
            } else {
                self.recent_lines.len().min(READ_REUSE_DEPTH)
            };
            // `span <= len` and the window is non-empty, so `idx` is in
            // range; `get` keeps the site out of the panic inventory.
            let idx = self.recent_lines.len() - 1 - self.rng.gen_range_usize(0, span);
            self.last_line = self.recent_lines.get(idx).copied().unwrap_or(0) % lines;
            return self.last_line;
        }
        // Hot-set or cold uniform access.
        let hot_lines = ((lines as f64 * p.hot_set_fraction) as u64).max(1);
        self.last_line = if self.rng.gen_bool(p.hot_fraction) {
            self.rng.gen_below(hot_lines)
        } else {
            self.rng.gen_below(lines)
        };
        self.last_line
    }
}

impl Iterator for SyntheticTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        // Advance time: dense within a burst, exponential gap between.
        if self.burst_left == 0 {
            self.cycle += self.sample_gap();
            self.burst_left = self.profile.burst_len;
        } else {
            self.cycle += u64::from(self.rng.gen_range_u32(1, 5));
        }
        self.burst_left -= 1;

        let op = if self.rng.gen_bool(self.profile.read_fraction) {
            TraceOp::Read
        } else {
            TraceOp::Write
        };
        let line = self.pick_line(op);
        if op == TraceOp::Write {
            if self.recent_lines.len() == self.profile.reuse_window {
                self.recent_lines.pop_front();
            }
            self.recent_lines.push_back(line);
        }
        let addr = if self.profile.scatter_pages {
            // Scatter at page granularity, preserving line order within a
            // page (so sequential runs keep row locality).
            let lines_per_page = PAGE_BYTES / LINE_BYTES;
            let page = scatter_page(line / lines_per_page);
            (page * lines_per_page + line % lines_per_page) * LINE_BYTES
        } else {
            // Contiguous layout, as in the paper's Pin-captured virtual
            // address streams.
            line * LINE_BYTES
        };
        Some(TraceRecord {
            cycle: self.cycle,
            addr,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row granularity used when checking recurrence at row level.
    const ROW_BYTES: u64 = 1024;

    fn test_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            suite: Suite::SpecCpu2006,
            read_fraction: 0.6,
            working_set_bytes: 1 << 20,
            hot_fraction: 0.7,
            hot_set_fraction: 0.1,
            sequential_run: 0.5,
            row_rewrite_prob: 0.5,
            read_reuse_prob: 0.3,
            mean_gap_cycles: 20.0,
            burst_len: 4,
            reuse_window: 64,
            scatter_pages: false,
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = test_profile();
        assert_eq!(p.generate(7, 500), p.generate(7, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        let p = test_profile();
        assert_ne!(p.generate(1, 500), p.generate(2, 500));
    }

    #[test]
    fn cycles_are_monotonic_and_addresses_in_range() {
        let p = test_profile();
        let mut last = 0;
        for r in p.generate(3, 2000) {
            assert!(r.cycle >= last, "cycles must not go backwards");
            last = r.cycle;
            assert!(r.addr < p.working_set_bytes);
            assert_eq!(r.addr % LINE_BYTES, 0, "line-aligned addresses");
        }
    }

    #[test]
    fn read_fraction_is_respected() {
        let p = test_profile();
        let n = 20_000;
        let reads = p.generate(11, n).iter().filter(|r| r.op.is_read()).count();
        let frac = reads as f64 / n as f64;
        assert!(
            (frac - p.read_fraction).abs() < 0.02,
            "observed read fraction {frac}"
        );
    }

    #[test]
    fn rewrite_recurrence_revisits_rows() {
        let mut p = test_profile();
        p.row_rewrite_prob = 0.9;
        p.sequential_run = 0.0;
        let records = p.generate(5, 10_000);
        let writes: Vec<u64> = records
            .iter()
            .filter(|r| !r.op.is_read())
            .map(|r| r.addr / ROW_BYTES)
            .collect();
        let unique: std::collections::BTreeSet<_> = writes.iter().collect();
        // Strong recurrence means far fewer unique rows than writes.
        assert!(
            unique.len() * 3 < writes.len(),
            "{} unique / {} writes",
            unique.len(),
            writes.len()
        );
    }

    #[test]
    fn mean_gap_scales_intensity() {
        let mut fast = test_profile();
        fast.mean_gap_cycles = 2.0;
        let mut slow = test_profile();
        slow.mean_gap_cycles = 200.0;
        let n = 5000;
        let end_fast = fast.generate(9, n).last().unwrap().cycle;
        let end_slow = slow.generate(9, n).last().unwrap().cycle;
        assert!(
            end_slow > end_fast * 2,
            "slower profile must spread over more cycles"
        );
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut p = test_profile();
        p.read_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = test_profile();
        p.working_set_bytes = 1;
        assert!(p.validate().is_err());
        let mut p = test_profile();
        p.burst_len = 0;
        assert!(p.validate().is_err());
        let mut p = test_profile();
        p.mean_gap_cycles = -1.0;
        assert!(p.validate().is_err());
        assert!(test_profile().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn generator_panics_on_invalid_profile() {
        let mut p = test_profile();
        p.hot_fraction = 2.0;
        let _ = p.generator(0);
    }
}
