//! Error type for the WOM-code PCM architecture layer.

use core::fmt;

use crate::snapshot::SnapshotError;
use pcm_sim::{SimError, SnapError};
use pcm_trace::stream::TraceStreamError;
use wom_code::WomCodeError;

/// Errors from building or driving a WOM-code PCM system.
#[derive(Debug)]
#[non_exhaustive]
pub enum WomPcmError {
    /// The underlying memory simulator rejected a request.
    Sim(SimError),
    /// The WOM code layer failed (bad code geometry, exhausted writes
    /// reaching the encoder — which the architecture should prevent).
    Code(WomCodeError),
    /// Inconsistent architecture configuration; the string names the issue.
    InvalidConfig(String),
    /// A streaming trace source failed while being drained (I/O error,
    /// truncated container, bad record).
    Trace(TraceStreamError),
    /// A snapshot container failed to encode, decode, or apply
    /// (truncated/corrupt payload, checksum failure, config mismatch).
    Snapshot(SnapshotError),
    /// Trace records arrived out of order (cycles must be non-decreasing).
    TraceOrder {
        /// Time already reached.
        now: u64,
        /// The (earlier) record cycle.
        record: u64,
    },
    /// A [`Session`](crate::session::Session) method was called in a
    /// lifecycle state that does not support it (e.g. feeding a
    /// finished session). Typed rather than panicking so a multi-tenant
    /// service can reject one client's misuse without poisoning its
    /// other sessions.
    SessionState {
        /// The operation attempted.
        op: &'static str,
        /// The lifecycle state the session was in.
        state: &'static str,
    },
    /// An internal invariant was violated — a simulator bug, not a user
    /// error. Returned instead of panicking so a broken invariant aborts
    /// one run of a parallel sweep, not the whole process.
    Internal(String),
}

impl fmt::Display for WomPcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "memory simulator error: {e}"),
            Self::Code(e) => write!(f, "wom-code error: {e}"),
            Self::InvalidConfig(what) => write!(f, "invalid architecture configuration: {what}"),
            Self::Trace(e) => write!(f, "trace source error: {e}"),
            Self::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Self::TraceOrder { now, record } => {
                write!(f, "trace record at cycle {record} arrived after time {now}")
            }
            Self::SessionState { op, state } => {
                write!(f, "session operation `{op}` is invalid in state {state}")
            }
            Self::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for WomPcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sim(e) => Some(e),
            Self::Code(e) => Some(e),
            Self::Trace(e) => Some(e),
            Self::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for WomPcmError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<WomCodeError> for WomPcmError {
    fn from(e: WomCodeError) -> Self {
        Self::Code(e)
    }
}

impl From<TraceStreamError> for WomPcmError {
    fn from(e: TraceStreamError) -> Self {
        Self::Trace(e)
    }
}

impl From<SnapshotError> for WomPcmError {
    fn from(e: SnapshotError) -> Self {
        Self::Snapshot(e)
    }
}

impl From<SnapError> for WomPcmError {
    fn from(e: SnapError) -> Self {
        Self::Snapshot(SnapshotError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = WomPcmError::from(SimError::QueueFull { capacity: 4 });
        assert!(e.to_string().contains("queue full"));
        assert!(std::error::Error::source(&e).is_some());
        let e = WomPcmError::InvalidConfig("r_th out of range".into());
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("r_th"));
        let e = WomPcmError::TraceOrder { now: 10, record: 5 };
        assert!(e.to_string().contains("cycle 5"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<WomPcmError>();
    }
}
