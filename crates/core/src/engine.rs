//! The architecture-agnostic simulation engine.
//!
//! [`Engine`] owns everything every architecture needs — the simulated
//! clock, trace ingestion and ordering checks, the main-memory and
//! WOM-cache [`MemorySystem`]s, back-pressure stalling, write-coalescing
//! windows, victim-writeback and wear-leveling plumbing, the functional
//! data checker, and [`RunMetrics`] accumulation. Everything
//! architecture-*specific* — WOM budget tables, the PCM-refresh engine,
//! the WOM-cache policy — lives behind the
//! [`ArchPolicy`] trait and reaches the shared
//! machinery through [`EngineCore`].
//!
//! The split keeps the per-record hot path free of architecture
//! dispatch: the engine never matches on
//! [`Architecture`](crate::arch::Architecture); it only calls the policy
//! hooks it was built with.

use crate::config::SystemConfig;
use crate::error::WomPcmError;
use crate::functional::FunctionalMemory;
use crate::metrics::RunMetrics;
use crate::observe::{EpochRecorder, EpochSeries, Event, Observer, ObserverSink, WriteClass};
use crate::policy::{self, ArchPolicy, ArraySide, ReadAction, WriteAction};
use crate::rowmap::RowMap;
use crate::snapshot::SnapshotError;
use crate::wear_leveling::StartGap;
use pcm_sim::{
    AddressDecoder, Completion, Cycle, DecodedAddr, MemOp, MemorySystem, ServiceClass, SimError,
    SnapReader, SnapWriter, TransactionId,
};
use pcm_trace::stream::TraceSource;
use pcm_trace::{TraceOp, TraceRecord};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wom_code::{Inverted, Rs23Code};

/// Cycles the system stalls before retrying when a controller queue is
/// full (models CPU-side back-pressure).
const STALL_QUANTUM: Cycle = 32;

/// Line size of the functional data checker.
const CHECK_LINE_BYTES: usize = 64;

/// Functional shadow of main memory: real WOM-encoded cells per 64-byte
/// line, plus the reference of the last data written to each line.
#[derive(Debug)]
struct DataCheck {
    mem: FunctionalMemory<Inverted<Rs23Code>>,
    /// Reference of the last data written per line, in the page-grained
    /// store (line ids are dense and clustered).
    expected: RowMap<[u8; CHECK_LINE_BYTES]>,
    seq: u64,
    reads_verified: u64,
    /// Reused decode target so verified reads don't allocate.
    line_buf: [u8; CHECK_LINE_BYTES],
}

impl DataCheck {
    fn new() -> Self {
        Self {
            mem: FunctionalMemory::new(Inverted::new(Rs23Code::new()), CHECK_LINE_BYTES)
                .expect("64-byte lines tile the RS code"),
            expected: RowMap::new(),
            seq: 0,
            reads_verified: 0,
            line_buf: [0u8; CHECK_LINE_BYTES],
        }
    }

    fn line_of(addr: u64) -> u64 {
        addr / CHECK_LINE_BYTES as u64
    }

    /// Deterministic per-write payload: unique per (line, sequence).
    fn payload(line: u64, seq: u64) -> [u8; CHECK_LINE_BYTES] {
        let mut data = [0u8; CHECK_LINE_BYTES];
        let mut z = line.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seq);
        for chunk in data.chunks_mut(8) {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        data
    }

    /// Writes fresh data through the real codec.
    fn on_write(&mut self, addr: u64) -> Result<(), WomPcmError> {
        let line = Self::line_of(addr);
        self.seq += 1;
        let data = Self::payload(line, self.seq);
        self.mem.write(line, &data)?;
        self.expected.insert(line, data);
        Ok(())
    }

    /// Starts a batched §3.2 refresh: the burst's lines are staged with
    /// [`stage_refresh_line`](Self::stage_refresh_line) and rewritten in
    /// one batch encode by [`commit_refresh`](Self::commit_refresh).
    fn begin_refresh(&mut self) {
        self.mem.rewrite_begin();
    }

    /// Stages one refreshed line: its data is read out (from the
    /// reference) and queued for the erase-and-first-write rewrite.
    /// Never-written lines have no data to preserve and are skipped.
    fn stage_refresh_line(&mut self, line: u64) {
        let Self { mem, expected, .. } = self;
        if let Some(data) = expected.get(line) {
            mem.rewrite_stage(line, data);
        }
    }

    /// Commits the staged refresh burst through the batch codec path.
    fn commit_refresh(&mut self) -> Result<(), WomPcmError> {
        self.mem.rewrite_commit()
    }

    /// Decodes the cells and checks them against the reference.
    fn on_read(&mut self, addr: u64) -> Result<(), WomPcmError> {
        let line = Self::line_of(addr);
        if let Some(expected) = self.expected.get(line) {
            if !self.mem.read_into(line, &mut self.line_buf) {
                return Err(WomPcmError::InvalidConfig("written line vanished".into()));
            }
            if &self.line_buf != expected {
                // womlint::allow(hotpath/transitive, reason = "corruption error path: allocates once, then the run aborts")
                return Err(WomPcmError::InvalidConfig(format!(
                    "data corruption at line {line:#x}: cells decode differently from the                      last write"
                )));
            }
            self.reads_verified += 1;
        }
        Ok(())
    }
}

/// The architecture-agnostic engine state, shared with policies.
///
/// Policy hooks receive `&mut EngineCore` and reach the clock, the memory
/// arrays, the coalescing windows, the victim-writeback queue, and the
/// metrics through the methods below. Policies never enqueue demand
/// traffic themselves — they return
/// [`ReadAction`] /
/// [`WriteAction`] values and the engine
/// performs the (possibly stalling) enqueues.
#[derive(Debug)]
pub struct EngineCore {
    config: SystemConfig,
    main: MemorySystem,
    cache_mem: Option<MemorySystem>,
    next_refresh_at: Cycle,
    // Ordered collections, not hash-based ones, for every structure whose
    // iteration (or retain) order can influence simulated behaviour:
    // bit-identical metrics across runs are a repo invariant (see the
    // golden_metrics test).
    victim_ids: BTreeSet<TransactionId>,
    leveling_ids: BTreeSet<TransactionId>,
    /// Per-flat-main-bank Start-Gap remappers, when wear leveling is on.
    start_gaps: Option<Vec<StartGap>>,
    /// Functional data checker, when `verify_data` is on.
    /// Boxed so the (large, rarely enabled) checker does not bloat
    /// `EngineCore` for the common verify-free runs.
    data_check: Option<Box<DataCheck>>,
    pending_victims: VecDeque<u64>,
    /// Open write-coalescing windows: rows with an array write still
    /// pending, keyed by (is_cache, row id), valued with the cycle the
    /// window closes.
    merge_windows: BTreeMap<(bool, u64), Cycle>,
    outstanding_main: u64,
    outstanding_cache: u64,
    metrics: RunMetrics,
    /// Instrumentation sink (see [`crate::observe`]); `Off` by default,
    /// so the demand hot path pays one predicted branch per event.
    observer: ObserverSink,
    last_record_cycle: Cycle,
}

impl EngineCore {
    fn new(config: SystemConfig) -> Result<Self, WomPcmError> {
        config.validate()?;
        let main = MemorySystem::new(config.mem.clone())?;
        let g = config.mem.geometry;

        let cache_mem = if config.arch.uses_cache() {
            let mut cache_cfg = config.mem.clone();
            cache_cfg.geometry.banks_per_rank = 1; // one WOM-cache array per rank
            Some(MemorySystem::new(cache_cfg)?)
        } else {
            None
        };
        let start_gaps = match config.wear_leveling {
            Some(interval) => {
                let logical_rows = u64::from(g.rows_per_bank) - 1;
                let sg = StartGap::new(logical_rows, interval)?;
                Some(vec![sg; g.total_banks() as usize])
            }
            None => None,
        };
        let period = config.mem.timing.refresh_period_cycles();
        let clock_ns = config.mem.timing.clock_ns;
        Ok(Self {
            main,
            cache_mem,
            next_refresh_at: period,
            victim_ids: BTreeSet::new(),
            leveling_ids: BTreeSet::new(),
            start_gaps,
            data_check: config.verify_data.then(|| Box::new(DataCheck::new())),
            pending_victims: VecDeque::new(),
            merge_windows: BTreeMap::new(),
            outstanding_main: 0,
            outstanding_cache: 0,
            metrics: RunMetrics {
                clock_ns,
                ..RunMetrics::default()
            },
            observer: match config.epoch_cycles {
                Some(width) => ObserverSink::Epochs(EpochRecorder::new(width)),
                None => ObserverSink::Off,
            },
            last_record_cycle: 0,
            config,
        })
    }

    /// The system's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulated time in cycles.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.main.now()
    }

    /// The main-memory address decoder.
    #[must_use]
    pub fn decoder(&self) -> AddressDecoder {
        *self.main.decoder()
    }

    /// Results accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Mutable access to the accumulating metrics (for policy counters).
    pub fn metrics_mut(&mut self) -> &mut RunMetrics {
        &mut self.metrics
    }

    /// Reports one instrumentation event to the attached observer. A
    /// single predicted branch and no work when observation is off;
    /// events are `Copy`, so emitting never allocates.
    #[inline]
    pub fn emit(&mut self, event: Event) {
        self.observer.on_event(&event);
    }

    /// Records the outcome of one planned row refresh: updates the
    /// refresh counters *and* emits the [`Event::RefreshRow`] event in
    /// one step, so per-epoch series always reconcile with
    /// [`RunMetrics`]. Policies call this from their refresh-completion
    /// handlers instead of poking `metrics_mut()`.
    pub fn note_refresh_row(
        &mut self,
        side: ArraySide,
        rank: u32,
        bank: u32,
        row: u32,
        c: &Completion,
    ) {
        if c.preempted {
            self.metrics.refreshes_preempted += 1;
        } else {
            self.metrics.refreshes_completed += 1;
        }
        self.observer.on_event(&Event::RefreshRow {
            cycle: c.finish,
            side,
            rank,
            bank,
            row,
            preempted: c.preempted,
        });
    }

    /// Records one hidden-page companion access (counter plus
    /// [`Event::HiddenPageAccess`]).
    pub fn note_hidden_page_access(&mut self) {
        self.metrics.hidden_page_accesses += 1;
        let cycle = self.main.now();
        self.observer.on_event(&Event::HiddenPageAccess { cycle });
    }

    /// Whether `rank` of main memory has no demand access queued.
    #[must_use]
    pub fn main_rank_idle(&self, rank: u32) -> bool {
        self.main.rank_queue_empty(rank)
    }

    /// Whether `(rank, bank)` of main memory has no in-flight operation.
    #[must_use]
    pub fn main_bank_free(&self, rank: u32, bank: u32) -> bool {
        self.main.is_bank_free(rank, bank)
    }

    /// Whether `rank` of the WOM-cache arrays has no demand access queued.
    ///
    /// # Panics
    ///
    /// Panics when the architecture has no cache array.
    #[must_use]
    pub fn cache_rank_idle(&self, rank: u32) -> bool {
        self.cache_mem
            .as_ref()
            .expect("architecture has a cache array")
            .rank_queue_empty(rank)
    }

    /// Whether the WOM-cache array of `rank` is free (its single bank).
    ///
    /// # Panics
    ///
    /// Panics when the architecture has no cache array.
    #[must_use]
    pub fn cache_bank_free(&self, rank: u32, bank: u32) -> bool {
        self.cache_mem
            .as_ref()
            .expect("architecture has a cache array")
            .is_bank_free(rank, bank)
    }

    /// Enqueues a burst-mode rank refresh on main memory (does not stall:
    /// refresh is planned only for idle ranks).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors for out-of-range rows.
    pub fn enqueue_main_rank_refresh(
        &mut self,
        rank: u32,
        rows: &[(u32, u32)],
    ) -> Result<TransactionId, WomPcmError> {
        let first = self.main.enqueue_rank_refresh(rank, rows)?;
        self.outstanding_main += rows.len() as u64;
        let cycle = self.main.now();
        self.observer.on_event(&Event::RefreshBurst {
            cycle,
            side: ArraySide::Main,
            rank,
            rows: rows.len() as u32,
        });
        Ok(first)
    }

    /// Enqueues a burst-mode rank refresh on the WOM-cache arrays.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors for out-of-range rows.
    ///
    /// # Panics
    ///
    /// Panics when the architecture has no cache array.
    pub fn enqueue_cache_rank_refresh(
        &mut self,
        rank: u32,
        rows: &[(u32, u32)],
    ) -> Result<TransactionId, WomPcmError> {
        let first = self
            .cache_mem
            .as_mut()
            .expect("architecture has a cache array")
            .enqueue_rank_refresh(rank, rows)?;
        self.outstanding_cache += rows.len() as u64;
        let cycle = self.main.now();
        self.observer.on_event(&Event::RefreshBurst {
            cycle,
            side: ArraySide::Cache,
            rank,
            rows: rows.len() as u32,
        });
        Ok(first)
    }

    /// Remaps a main-memory address through the bank's Start-Gap layer
    /// (identity when wear leveling is off).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors for malformed addresses.
    pub fn remap_main(&self, addr: u64) -> Result<u64, WomPcmError> {
        let Some(sgs) = &self.start_gaps else {
            return Ok(addr);
        };
        let g = self.config.mem.geometry;
        let d = self.main.decoder().decode(addr);
        // One row per bank is the gap spare: logical rows = rows - 1.
        let logical = u64::from(d.row) % (u64::from(g.rows_per_bank) - 1);
        let physical = sgs[d.flat_bank(&g) as usize].physical_of(logical) as u32;
        Ok(self
            .main
            .decoder()
            .encode(DecodedAddr { row: physical, ..d })?)
    }

    /// Runs the functional data checker's write hook (no-op when
    /// verification is off).
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn check_write(&mut self, addr: u64) -> Result<(), WomPcmError> {
        if let Some(check) = &mut self.data_check {
            check.on_write(addr)?;
        }
        Ok(())
    }

    /// Runs the functional data checker's read hook (no-op when
    /// verification is off).
    ///
    /// # Errors
    ///
    /// Returns a data-corruption error when the cells decode differently
    /// from the last write.
    pub fn check_read(&mut self, addr: u64) -> Result<(), WomPcmError> {
        if let Some(check) = &mut self.data_check {
            check.on_read(addr)?;
        }
        Ok(())
    }

    /// Re-initializes every line of a refreshed main-memory row in the
    /// functional checker (no-op when verification is off).
    ///
    /// # Errors
    ///
    /// Returns an error when the functional refresh itself fails — that
    /// is a simulator bug, not a configuration error.
    pub fn check_refresh_row(&mut self, rank: u32, bank: u32, row: u32) -> Result<(), WomPcmError> {
        let g = self.config.mem.geometry;
        let decoder = *self.main.decoder();
        if let Some(check) = &mut self.data_check {
            // The whole row's lines are staged and rewritten as one
            // batch: `BlockCodec::encode_rows_into` amortizes kernel
            // dispatch and LUT loads across the refresh burst.
            check.begin_refresh();
            for column in 0..g.columns_per_row() {
                let d = DecodedAddr {
                    rank,
                    bank,
                    row,
                    column,
                };
                let addr = decoder.encode(d)?;
                check.stage_refresh_line(DataCheck::line_of(addr));
            }
            check.commit_refresh()?;
        }
        Ok(())
    }

    /// Queues a victim writeback to main memory (issued as soon as the
    /// write queue has room; never stalls the caller).
    pub fn push_victim(&mut self, physical_addr: u64) {
        self.pending_victims.push_back(physical_addr);
        self.flush_victims();
    }

    /// Absorbs a write into an already-pending array write of the same
    /// row, if its coalescing window is still open. Coalesced writes cost
    /// one data burst (the row buffer merges them) and consume no WOM
    /// budget — the row is written back to the array once.
    pub fn try_coalesce(&mut self, is_cache: bool, row_key: u64) -> bool {
        let now = self.now();
        if self.merge_windows.len() > 8192 {
            self.merge_windows.retain(|_, &mut until| until > now);
        }
        match self.merge_windows.get(&(is_cache, row_key)) {
            Some(&until) if now < until => {
                self.metrics.coalesced_writes += 1;
                let burst = self.config.mem.timing.burst_cycles();
                self.metrics.writes.record(burst);
                self.metrics.write_hist.record(burst);
                self.observer.on_event(&Event::WriteCompleted {
                    cycle: now,
                    latency: burst,
                    class: WriteClass::Coalesced,
                });
                true
            }
            _ => false,
        }
    }

    /// Opens (or extends) the coalescing window of a row after issuing an
    /// array write for it.
    fn open_merge_window(&mut self, is_cache: bool, row_key: u64, class: ServiceClass) {
        let t = &self.config.mem.timing;
        let service = match class {
            ServiceClass::ResetOnlyWrite => t.reset_cycles(),
            _ => t.write_cycles(),
        };
        let until = self.now() + service;
        self.merge_windows.insert((is_cache, row_key), until);
    }

    /// Retries queued victim writebacks while the main write queue has
    /// room.
    fn flush_victims(&mut self) {
        while let Some(&addr) = self.pending_victims.front() {
            if !self.main.can_accept_write() {
                break;
            }
            let id = self
                .main
                .enqueue(MemOp::Write, addr, ServiceClass::Write)
                .expect("capacity checked");
            self.victim_ids.insert(id);
            self.outstanding_main += 1;
            self.pending_victims.pop_front();
        }
    }

    /// Serializes the complete mid-run engine state (everything that
    /// varies between two `submit` calls). Collections iterate in their
    /// deterministic (key) order, so the same state always produces the
    /// same bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when a caller-supplied
    /// observer is attached (see [`ObserverSink::save_state`]).
    pub(crate) fn save_state(&self, w: &mut SnapWriter) -> Result<(), WomPcmError> {
        self.main.save_state(w);
        match &self.cache_mem {
            None => w.put_bool(false),
            Some(cm) => {
                w.put_bool(true);
                cm.save_state(w);
            }
        }
        w.put_u64(self.next_refresh_at);
        w.put_usize(self.victim_ids.len());
        for &id in &self.victim_ids {
            w.put_u64(id);
        }
        w.put_usize(self.leveling_ids.len());
        for &id in &self.leveling_ids {
            w.put_u64(id);
        }
        match &self.start_gaps {
            None => w.put_bool(false),
            Some(sgs) => {
                w.put_bool(true);
                w.put_usize(sgs.len());
                for sg in sgs {
                    sg.save_state(w);
                }
            }
        }
        match &self.data_check {
            None => w.put_bool(false),
            Some(check) => {
                w.put_bool(true);
                check.mem.save_state(w);
                w.put_usize(check.expected.len());
                for (line, data) in check.expected.iter() {
                    w.put_u64(line);
                    w.put_bytes(data);
                }
                w.put_u64(check.seq);
                w.put_u64(check.reads_verified);
            }
        }
        w.put_usize(self.pending_victims.len());
        for &addr in &self.pending_victims {
            w.put_u64(addr);
        }
        w.put_usize(self.merge_windows.len());
        for (&(is_cache, key), &until) in &self.merge_windows {
            w.put_bool(is_cache);
            w.put_u64(key);
            w.put_u64(until);
        }
        w.put_u64(self.outstanding_main);
        w.put_u64(self.outstanding_cache);
        self.metrics.save_state(w);
        self.observer.save_state(w)?;
        w.put_u64(self.last_record_cycle);
        Ok(())
    }

    /// Restores state written by [`save_state`](Self::save_state) into
    /// this core, which must have been freshly built from the same
    /// configuration (the snapshot container's fingerprint enforces
    /// this before any payload byte is decoded).
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Snapshot`] for truncated or corrupt
    /// payloads, including structure that disagrees with the
    /// configuration.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), WomPcmError> {
        self.main.restore_state(r)?;
        let has_cache = r.take_bool()?;
        match (&mut self.cache_mem, has_cache) {
            (Some(cm), true) => cm.restore_state(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapshotError::Corrupt(
                    "cache-array presence disagrees with the configuration",
                )
                .into())
            }
        }
        self.next_refresh_at = r.take_u64()?;
        let victims = r.take_len(8)?;
        self.victim_ids = BTreeSet::new();
        for _ in 0..victims {
            self.victim_ids.insert(r.take_u64()?);
        }
        let levelings = r.take_len(8)?;
        self.leveling_ids = BTreeSet::new();
        for _ in 0..levelings {
            self.leveling_ids.insert(r.take_u64()?);
        }
        let has_gaps = r.take_bool()?;
        match (&mut self.start_gaps, has_gaps) {
            (Some(sgs), true) => {
                let n = r.take_len(8)?;
                if n != sgs.len() {
                    return Err(SnapshotError::Corrupt(
                        "Start-Gap bank count disagrees with the geometry",
                    )
                    .into());
                }
                for sg in sgs.iter_mut() {
                    *sg = StartGap::load_state(r)?;
                }
            }
            (None, false) => {}
            _ => {
                return Err(SnapshotError::Corrupt(
                    "wear-leveling presence disagrees with the configuration",
                )
                .into())
            }
        }
        let has_check = r.take_bool()?;
        match (&mut self.data_check, has_check) {
            (Some(check), true) => {
                check.mem.load_state(r)?;
                let lines = r.take_len(8 + CHECK_LINE_BYTES)?;
                check.expected = RowMap::new();
                for _ in 0..lines {
                    let line = r.take_u64()?;
                    let bytes = r.take_bytes(CHECK_LINE_BYTES)?;
                    let mut data = [0u8; CHECK_LINE_BYTES];
                    data.copy_from_slice(bytes);
                    check.expected.insert(line, data);
                }
                check.seq = r.take_u64()?;
                check.reads_verified = r.take_u64()?;
                check.line_buf = [0u8; CHECK_LINE_BYTES];
            }
            (None, false) => {}
            _ => {
                return Err(SnapshotError::Corrupt(
                    "data-check presence disagrees with the configuration",
                )
                .into())
            }
        }
        let victims = r.take_len(8)?;
        self.pending_victims = VecDeque::new();
        for _ in 0..victims {
            self.pending_victims.push_back(r.take_u64()?);
        }
        let windows = r.take_len(17)?;
        self.merge_windows = BTreeMap::new();
        for _ in 0..windows {
            let is_cache = r.take_bool()?;
            let key = r.take_u64()?;
            let until = r.take_u64()?;
            self.merge_windows.insert((is_cache, key), until);
        }
        self.outstanding_main = r.take_u64()?;
        self.outstanding_cache = r.take_u64()?;
        self.metrics = RunMetrics::load_state(r)?;
        self.observer = ObserverSink::load_state(r)?;
        self.last_record_cycle = r.take_u64()?;
        Ok(())
    }

    fn record_demand(&mut self, c: &Completion) {
        match c.op {
            MemOp::Read => {
                self.metrics.reads.record(c.latency());
                self.metrics.read_hist.record(c.latency());
                self.observer.on_event(&Event::ReadCompleted {
                    cycle: c.finish,
                    latency: c.latency(),
                });
            }
            MemOp::Write => {
                self.metrics.writes.record(c.latency());
                self.metrics.write_hist.record(c.latency());
                let class = if c.class == ServiceClass::ResetOnlyWrite {
                    self.metrics.fast_writes += 1;
                    WriteClass::Fast
                } else {
                    self.metrics.slow_writes += 1;
                    WriteClass::Slow
                };
                self.observer.on_event(&Event::WriteCompleted {
                    cycle: c.finish,
                    latency: c.latency(),
                    class,
                });
            }
        }
    }
}

/// A trace-driven simulation engine running one [`ArchPolicy`].
///
/// The engine is generic over the policy so monomorphized policies pay no
/// dispatch cost; [`crate::WomPcmSystem`] wraps an
/// `Engine<Box<dyn ArchPolicy>>` built from a [`SystemConfig`].
#[derive(Debug)]
pub struct Engine<P> {
    core: EngineCore,
    policy: P,
    /// Cached `policy.wants_ticks()`: checked on every time advance.
    ticks: bool,
}

impl Engine<Box<dyn ArchPolicy>> {
    /// Builds an engine with the policy matching `config.arch`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] for inconsistent parameters.
    pub fn from_config(config: SystemConfig) -> Result<Self, WomPcmError> {
        config.validate()?;
        let policy = policy::build(&config)?;
        Self::with_policy(config, policy)
    }
}

impl<P: ArchPolicy> Engine<P> {
    /// Builds an engine running a caller-supplied policy (the extension
    /// point for architectures beyond the paper's four; see `DESIGN.md`).
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] for inconsistent parameters.
    pub fn with_policy(config: SystemConfig, policy: P) -> Result<Self, WomPcmError> {
        let core = EngineCore::new(config)?;
        let ticks = policy.wants_ticks();
        Ok(Self {
            core,
            policy,
            ticks,
        })
    }

    /// The system's configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.core.config()
    }

    /// Current simulated time in cycles.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.core.now()
    }

    /// Results accumulated so far (finalized copies come from
    /// [`finish`](Self::finish) / [`run_trace`](Self::run_trace)).
    #[must_use]
    pub fn metrics(&self) -> &RunMetrics {
        self.core.metrics()
    }

    /// Attaches a custom [`Observer`], replacing any epoch recorder
    /// configured via `SystemConfig::epoch_cycles`.
    pub fn set_observer(&mut self, observer: Box<dyn Observer>) {
        self.core.observer = ObserverSink::Custom(observer);
    }

    /// The epoch series recorded so far, when epoch observation is
    /// enabled (`SystemConfig::epoch_cycles`).
    #[must_use]
    pub fn epochs(&self) -> Option<&EpochSeries> {
        self.core.observer.epochs()
    }

    /// Detaches and returns the recorded epoch series; observation is
    /// off afterwards. `None` when epoch observation was not enabled.
    pub fn take_epochs(&mut self) -> Option<EpochSeries> {
        self.core.observer.take_epochs()
    }

    /// Serializes the engine's complete mid-run state — memory systems,
    /// in-flight bookkeeping, metrics, epoch series, and the policy's
    /// architecture state — as one snapshot payload. Call between
    /// [`submit`](Self::submit)s; wrap the payload in a `WOMSNAP`
    /// container with [`crate::snapshot::encode_container`].
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] when a caller-supplied
    /// observer is attached — arbitrary observers cannot be serialized;
    /// detach the observer first.
    pub fn save_state(&self) -> Result<Vec<u8>, WomPcmError> {
        let mut w = SnapWriter::new();
        self.core.save_state(&mut w)?;
        self.policy.save_state(&mut w);
        Ok(w.into_bytes())
    }

    /// Restores a payload written by [`save_state`](Self::save_state)
    /// into this engine, which must have been freshly built from the
    /// same configuration. After a successful restore the engine is
    /// byte-for-byte in the saved run's mid-flight state: submitting the
    /// remaining trace records produces metrics `{:#?}`-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Snapshot`] for truncated or corrupt
    /// payloads (including payloads whose structure disagrees with this
    /// engine's configuration).
    pub fn restore_state(&mut self, payload: &[u8]) -> Result<(), WomPcmError> {
        let mut r = SnapReader::new(payload);
        self.core.restore_state(&mut r)?;
        self.policy.load_state(&mut r)?;
        r.finish()?;
        Ok(())
    }

    /// Feeds one trace record to the engine, advancing simulated time to
    /// its arrival cycle first.
    ///
    /// # Errors
    ///
    /// * [`WomPcmError::TraceOrder`] when record cycles decrease.
    /// * Simulator errors for malformed addresses.
    pub fn submit(&mut self, record: TraceRecord) -> Result<(), WomPcmError> {
        if record.cycle < self.core.last_record_cycle {
            return Err(WomPcmError::TraceOrder {
                now: self.core.last_record_cycle,
                record: record.cycle,
            });
        }
        self.core.last_record_cycle = record.cycle;
        let target = record.cycle.max(self.now());
        self.advance(target)?;
        match record.op {
            TraceOp::Read => self.submit_read(record.addr),
            TraceOp::Write => self.submit_write(record.addr),
        }
    }

    /// Runs a whole trace and finalizes the metrics.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn run_trace<I: IntoIterator<Item = TraceRecord>>(
        &mut self,
        records: I,
    ) -> Result<RunMetrics, WomPcmError> {
        for r in records {
            self.submit(r)?;
        }
        self.finish()
    }

    /// Runs a streaming [`TraceSource`] to exhaustion and finalizes the
    /// metrics. Unlike [`run_trace`](Self::run_trace), the trace is
    /// consumed a chunk at a time from the source's reused buffer, so
    /// trace-side memory stays `O(chunk)` for arbitrarily long runs.
    ///
    /// # Errors
    ///
    /// * [`WomPcmError::Trace`] when the source fails (I/O, truncation).
    /// * See [`submit`](Self::submit) for per-record errors.
    pub fn run_source<S: TraceSource>(
        &mut self,
        source: &mut S,
    ) -> Result<RunMetrics, WomPcmError> {
        while let Some(chunk) = source.next_chunk().map_err(WomPcmError::Trace)? {
            for r in chunk {
                self.submit(*r)?;
            }
        }
        self.finish()
    }

    /// Completes all outstanding work and returns the final metrics.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (none are expected during a drain).
    pub fn finish(&mut self) -> Result<RunMetrics, WomPcmError> {
        let mut guard = 0u64;
        while self.core.outstanding_main + self.core.outstanding_cache > 0
            || !self.core.pending_victims.is_empty()
        {
            let next = self.now() + 1_000;
            self.advance_all_to(next)?;
            guard += 1;
            assert!(guard < 10_000_000, "drain failed to make progress");
        }
        let now = self.now();
        self.core.observer.on_finish(now);
        // Take the accumulated metrics, finalize in place, and store one
        // clone back — no policy's `finish` reads `core.metrics`.
        let mut result = std::mem::take(&mut self.core.metrics);
        self.policy.finish(&self.core, &mut result);
        result.energy = self.core.main.stats().energy;
        result.wear_main = self.core.main.wear().summary();
        if let Some(check) = &self.core.data_check {
            result.data_reads_verified = check.reads_verified;
        }
        if let Some(cm) = &self.core.cache_mem {
            result.energy.merge(&cm.stats().energy);
            result.wear_cache = Some(cm.wear().summary());
        }
        self.core.metrics = result.clone();
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Time advancement
    // ------------------------------------------------------------------

    /// Advances to `cycle`, running the policy's periodic tick on the way
    /// when it wants one.
    ///
    /// As in DRAMSim2, the refresh period is per rank and checks are
    /// staggered: with a 4000 ns period and 16 ranks, a check fires every
    /// 250 ns, each visiting the next rank in round-robin order, so every
    /// rank is considered once per period.
    fn advance(&mut self, cycle: Cycle) -> Result<(), WomPcmError> {
        if self.ticks {
            let period = self.core.config.mem.timing.refresh_period_cycles();
            let stagger = (period / Cycle::from(self.core.config.mem.geometry.ranks)).max(1);
            while self.core.next_refresh_at <= cycle {
                let at = self.core.next_refresh_at;
                self.advance_all_to(at)?;
                self.policy.on_tick(&mut self.core)?;
                self.core.next_refresh_at += stagger;
            }
        }
        self.advance_all_to(cycle)
    }

    /// Advances both memory systems in lockstep, handling completions.
    fn advance_all_to(&mut self, cycle: Cycle) -> Result<(), WomPcmError> {
        if cycle > self.core.main.now() {
            for c in self.core.main.advance_to(cycle)? {
                self.handle_main_completion(&c)?;
            }
        }
        if let Some(cm) = &mut self.core.cache_mem {
            if cycle > cm.now() {
                let completions = cm.advance_to(cycle)?;
                for c in completions {
                    self.handle_cache_completion(&c)?;
                }
            }
        }
        self.core.flush_victims();
        Ok(())
    }

    fn handle_main_completion(&mut self, c: &Completion) -> Result<(), WomPcmError> {
        self.core.outstanding_main -= 1;
        if c.class == ServiceClass::RankRefresh {
            return self
                .policy
                .on_completion(&mut self.core, ArraySide::Main, c);
        }
        if self.core.victim_ids.remove(&c.id) {
            self.core.metrics.victim_writebacks += 1;
            self.core.emit(Event::VictimWriteback { cycle: c.finish });
            return Ok(());
        }
        if self.core.leveling_ids.remove(&c.id) {
            return Ok(()); // internal wear-leveling row copy
        }
        self.core.record_demand(c);
        Ok(())
    }

    fn handle_cache_completion(&mut self, c: &Completion) -> Result<(), WomPcmError> {
        self.core.outstanding_cache -= 1;
        if c.class == ServiceClass::RankRefresh {
            return self
                .policy
                .on_completion(&mut self.core, ArraySide::Cache, c);
        }
        self.core.record_demand(c);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Demand paths
    // ------------------------------------------------------------------

    fn submit_read(&mut self, addr: u64) -> Result<(), WomPcmError> {
        let cycle = self.core.main.now();
        self.core.emit(Event::ReadIssued { cycle, addr });
        match self.policy.on_read(&mut self.core, addr)? {
            ReadAction::Main { addr, companion } => {
                self.enqueue_main(MemOp::Read, addr, ServiceClass::Read)?;
                if let Some(companion) = companion {
                    self.enqueue_main_internal(MemOp::Read, companion, ServiceClass::Read)?;
                }
                Ok(())
            }
            ReadAction::Cache { rank, row } => {
                let cache_addr = self.core.cache_addr(rank, row)?;
                self.enqueue_cache(MemOp::Read, cache_addr, ServiceClass::Read)
            }
        }
    }

    fn submit_write(&mut self, addr: u64) -> Result<(), WomPcmError> {
        let cycle = self.core.main.now();
        self.core.emit(Event::WriteIssued { cycle, addr });
        match self.policy.on_write(&mut self.core, addr)? {
            WriteAction::Coalesced => Ok(()),
            WriteAction::Main {
                addr,
                class,
                row_key,
                companion,
            } => {
                self.enqueue_main(MemOp::Write, addr, class)?;
                self.core.open_merge_window(false, row_key, class);
                self.account_leveling_write(addr)?;
                if let Some(companion) = companion {
                    self.enqueue_main_internal(MemOp::Write, companion, class)?;
                }
                Ok(())
            }
            WriteAction::Cache {
                rank,
                row,
                class,
                merge_key,
            } => {
                let cache_addr = self.core.cache_addr(rank, row)?;
                self.enqueue_cache(MemOp::Write, cache_addr, class)?;
                self.core.open_merge_window(true, merge_key, class);
                Ok(())
            }
        }
    }

    /// Accounts a demand write for wear leveling; if the bank's gap moves,
    /// issues the internal row copy and lets the policy update its state
    /// for the freshly rewritten destination row.
    fn account_leveling_write(&mut self, physical_addr: u64) -> Result<(), WomPcmError> {
        let Some(sgs) = &mut self.core.start_gaps else {
            return Ok(());
        };
        let g = self.core.config.mem.geometry;
        let d = self.core.main.decoder().decode(physical_addr);
        let flat = d.flat_bank(&g) as usize;
        let Some((from_row, to_row)) = sgs[flat].record_write() else {
            return Ok(());
        };
        self.core.metrics.leveling_copies += 1;
        self.core.emit(Event::GapMove {
            cycle: self.core.main.now(),
            rank: d.rank,
            bank: d.bank,
        });
        let from_addr = self.core.main.decoder().encode(DecodedAddr {
            row: from_row as u32,
            column: 0,
            ..d
        })?;
        let to_addr = self.core.main.decoder().encode(DecodedAddr {
            row: to_row as u32,
            column: 0,
            ..d
        })?;
        // The copy is one row read plus one full row write.
        self.enqueue_main_internal(MemOp::Read, from_addr, ServiceClass::Read)?;
        self.enqueue_main_internal(MemOp::Write, to_addr, ServiceClass::Write)?;
        // The destination physical row was erased and rewritten once.
        let to_d = self.core.main.decoder().decode(to_addr);
        self.policy.on_wear_level_copy(&mut self.core, to_d);
        Ok(())
    }

    /// Enqueues on main memory, stalling (advancing time) on back-pressure.
    fn enqueue_main(
        &mut self,
        op: MemOp,
        addr: u64,
        class: ServiceClass,
    ) -> Result<(), WomPcmError> {
        loop {
            match self.core.main.enqueue(op, addr, class) {
                Ok(_) => {
                    self.core.outstanding_main += 1;
                    return Ok(());
                }
                Err(SimError::QueueFull { .. }) => {
                    let next = self.now() + STALL_QUANTUM;
                    self.advance(next)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Enqueues internal (non-demand) main-memory traffic, stalling on
    /// back-pressure.
    fn enqueue_main_internal(
        &mut self,
        op: MemOp,
        addr: u64,
        class: ServiceClass,
    ) -> Result<(), WomPcmError> {
        loop {
            match self.core.main.enqueue(op, addr, class) {
                Ok(id) => {
                    self.core.leveling_ids.insert(id);
                    self.core.outstanding_main += 1;
                    return Ok(());
                }
                Err(SimError::QueueFull { .. }) => {
                    let next = self.now() + STALL_QUANTUM;
                    self.advance(next)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Enqueues on the WOM-cache arrays, stalling on back-pressure.
    fn enqueue_cache(
        &mut self,
        op: MemOp,
        addr: u64,
        class: ServiceClass,
    ) -> Result<(), WomPcmError> {
        loop {
            let result = self
                .core
                .cache_mem
                .as_mut()
                .expect("architecture has a cache array")
                .enqueue(op, addr, class);
            match result {
                Ok(_) => {
                    self.core.outstanding_cache += 1;
                    return Ok(());
                }
                Err(SimError::QueueFull { .. }) => {
                    let next = self.now() + STALL_QUANTUM;
                    self.advance(next)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl EngineCore {
    fn cache_addr(&self, rank: u32, row: u32) -> Result<u64, WomPcmError> {
        let cm = self
            .cache_mem
            .as_ref()
            .expect("architecture has a cache array");
        Ok(cm.decoder().encode(DecodedAddr {
            rank,
            bank: 0,
            row,
            column: 0,
        })?)
    }
}
