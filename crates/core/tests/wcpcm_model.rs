//! Model-based verification of the WCPCM write/read protocol (§4).
//!
//! A reference model tracks, for every (rank, bank, row), where the
//! *latest* data lives: in the WOM-cache or in PCM main memory. Driving
//! randomized (but deterministically seeded) operation sequences against
//! [`WomCache`] must agree with the model at every step — a read may be
//! served from the cache exactly when the cache holds the latest data,
//! and every eviction must write the victim's data back so main memory
//! becomes current again.

use pcm_rng::Rng;
use std::collections::BTreeMap;
use wom_pcm::wcpcm::{CacheWriteOutcome, WomCache};

const RANKS: u32 = 2;
const BANKS: u32 = 4;
const ROWS: u32 = 8;
const CASES: u64 = 256;

/// Where the newest version of a row's data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Holder {
    Main,
    Cache,
}

#[derive(Debug, Default)]
struct ReferenceModel {
    /// Latest-data holder per (rank, bank, row); absent = never written
    /// (main memory trivially current).
    holders: BTreeMap<(u32, u32, u32), Holder>,
}

impl ReferenceModel {
    fn write(&mut self, rank: u32, bank: u32, row: u32, outcome: CacheWriteOutcome) {
        if let CacheWriteOutcome::Miss { victim_bank, .. } = outcome {
            // The victim's data is written back: main memory is current
            // for the evicted bank again.
            self.holders.insert((rank, victim_bank, row), Holder::Main);
        }
        // The cache now holds the newest data for the written bank.
        self.holders.insert((rank, bank, row), Holder::Cache);
    }

    fn holder(&self, rank: u32, bank: u32, row: u32) -> Holder {
        self.holders
            .get(&(rank, bank, row))
            .copied()
            .unwrap_or(Holder::Main)
    }
}

/// An operation in the randomized protocol drive.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { rank: u32, bank: u32, row: u32 },
    Read { rank: u32, bank: u32, row: u32 },
}

fn ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.gen_range_usize(1, 200);
    (0..len)
        .map(|_| {
            let rank = rng.gen_range_u32(0, RANKS);
            let bank = rng.gen_range_u32(0, BANKS);
            let row = rng.gen_range_u32(0, ROWS);
            if rng.gen_bool(0.5) {
                Op::Write { rank, bank, row }
            } else {
                Op::Read { rank, bank, row }
            }
        })
        .collect()
}

/// The cache's hit/miss decisions always match the reference model of
/// data ownership: no read is ever served stale data, and no fresh
/// data is ever lost to an eviction.
#[test]
fn cache_routing_matches_ownership_model() {
    let mut rng = Rng::seed_from_u64(0x3C9C);
    for _ in 0..CASES {
        let mut cache = WomCache::new(RANKS, BANKS, ROWS, 16, 2);
        let mut model = ReferenceModel::default();
        for op in ops(&mut rng) {
            match op {
                Op::Write { rank, bank, row } => {
                    let outcome = cache.write(rank, bank, row, 0);
                    model.write(rank, bank, row, outcome);
                }
                Op::Read { rank, bank, row } => {
                    let hit = cache.read(rank, bank, row);
                    let expected = model.holder(rank, bank, row) == Holder::Cache;
                    assert_eq!(
                        hit,
                        expected,
                        "read ({},{},{}) routed to {} but latest data is in {:?}",
                        rank,
                        bank,
                        row,
                        if hit { "cache" } else { "main" },
                        model.holder(rank, bank, row)
                    );
                }
            }
        }
    }
}

/// At most one bank's data per (rank, row) can live in the cache, and
/// every other bank's latest data must be in main memory — the §4
/// structural invariant behind the 1-valid-bit selector field.
#[test]
fn at_most_one_cache_holder_per_row() {
    let mut rng = Rng::seed_from_u64(0x401D);
    for _ in 0..CASES {
        let mut cache = WomCache::new(RANKS, BANKS, ROWS, 16, 2);
        let mut model = ReferenceModel::default();
        for op in ops(&mut rng) {
            if let Op::Write { rank, bank, row } = op {
                let outcome = cache.write(rank, bank, row, 0);
                model.write(rank, bank, row, outcome);
            }
        }
        for rank in 0..RANKS {
            for row in 0..ROWS {
                let holders: Vec<u32> = (0..BANKS)
                    .filter(|&b| model.holder(rank, b, row) == Holder::Cache)
                    .collect();
                assert!(
                    holders.len() <= 1,
                    "rank {rank} row {row} has multiple cache holders: {holders:?}"
                );
                // And the model's holder is exactly the tag the cache reports.
                assert_eq!(cache.peek_tag(rank, row).is_some(), !holders.is_empty());
                if let Some(tag) = cache.peek_tag(rank, row) {
                    assert_eq!(holders, vec![tag]);
                }
            }
        }
    }
}
