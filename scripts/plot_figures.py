#!/usr/bin/env python3
"""Render the paper's figures from the harness's JSON output.

Usage:
    cargo run -p wom-pcm-bench --bin fig5 --release -- 120000 2014 --json > fig5.json
    cargo run -p wom-pcm-bench --bin fig6 --release -- 120000 2014 --json > fig6.json
    cargo run -p wom-pcm-bench --bin fig7 --release -- 120000 2014 --json > fig7.json
    python3 scripts/plot_figures.py fig5.json fig6.json fig7.json

Writes fig5a.png, fig5b.png, fig6.png, fig7.png next to the inputs.
Requires matplotlib.
"""

import json
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - tooling convenience only
    sys.exit("matplotlib is required: pip install matplotlib")

ARCHS = ["baseline", "wom-code", "pcm-refresh", "wcpcm"]
BANKS = [4, 8, 16, 32]


def plot_fig5(rows, panel, outfile):
    key = "write" if panel == "a" else "read"
    names = [r["benchmark"] for r in rows]
    x = range(len(names))
    width = 0.2
    fig, ax = plt.subplots(figsize=(14, 4))
    for i, arch in enumerate(ARCHS):
        vals = [r[key][i] for r in rows]
        ax.bar([xi + (i - 1.5) * width for xi in x], vals, width, label=arch)
    ax.set_xticks(list(x))
    ax.set_xticklabels(names, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel(f"normalized {key} latency")
    ax.set_title(f"Figure 5({panel}): normalized {key} latency")
    ax.legend(fontsize=8)
    ax.axhline(1.0, color="gray", linewidth=0.5)
    fig.tight_layout()
    fig.savefig(outfile, dpi=150)
    print(f"wrote {outfile}")


def plot_sweep(docs, field, ylabel, title, outfile, normalize=False):
    fig, ax = plt.subplots(figsize=(7, 5))
    for doc in docs:
        pts = doc["points"]
        vals = [p[field] for p in pts]
        if normalize and vals[0]:
            vals = [v / vals[0] for v in vals]
        ax.plot(BANKS, vals, marker="o", linewidth=0.8, alpha=0.5, label=doc["benchmark"])
    ax.set_xscale("log", base=2)
    ax.set_xticks(BANKS)
    ax.set_xticklabels([str(b) for b in BANKS])
    ax.set_xlabel("banks per rank")
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(outfile, dpi=150)
    print(f"wrote {outfile}")


def main(paths):
    for path in paths:
        p = Path(path)
        data = json.loads(p.read_text())
        if "fig5" in p.name:
            plot_fig5(data, "a", p.with_name("fig5a.png"))
            plot_fig5(data, "b", p.with_name("fig5b.png"))
        elif "fig6" in p.name:
            plot_sweep(data, "hit_rate", "WOM-cache hit rate",
                       "Figure 6: WOM-cache hit rate", p.with_name("fig6.png"))
        elif "fig7" in p.name:
            plot_sweep(data, "mean_write_ns", "normalized write latency",
                       "Figure 7: WCPCM write latency (vs 4 banks/rank)",
                       p.with_name("fig7.png"), normalize=True)
        else:
            print(f"skipping {p}: name must contain fig5/fig6/fig7")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    main(sys.argv[1:])
