#!/usr/bin/env sh
# Run womlint (DESIGN.md §9) and, on failure, print the violations as a
# readable table from the JSON report — the CI-facing counterpart of
# bench_compare.sh.
#
# Usage: scripts/lint_invariants.sh [REPORT.json]
#
# The JSON report is written to REPORT.json (default: a temp file) and
# kept on failure so CI can upload it. Exit code is womlint's: 0 clean,
# 1 violations, 2 usage/config error.

set -u

report="${1:-$(mktemp /tmp/womlint-XXXXXX.json)}"

cargo run -q -p womlint -- --json "$report"
status=$?
if [ "$status" -eq 0 ]; then
    exit 0
fi

echo ""
echo "lint-invariants: FAILED (womlint exit $status); report: $report" >&2
python3 - "$report" <<'PY' >&2 || true
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)

rows = [(d["rule"], f'{d["file"]}:{d["line"]}', d["message"]) for d in report["violations"]]
if rows:
    rule_w = max(len(r[0]) for r in rows)
    loc_w = max(len(r[1]) for r in rows)
    for rule, loc, message in rows:
        print(f"  {rule:<{rule_w}}  {loc:<{loc_w}}  {message}")
summary = report["summary"]
print(
    f'  {summary["violations"]} violation(s) across '
    f'{summary["files_scanned"]} file(s), {summary["suppressed"]} suppressed'
)
PY
exit "$status"
