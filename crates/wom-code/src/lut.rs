//! Dense symbol lookup tables: the word-parallel fast path's substrate.
//!
//! Every [`WomCode`] in this crate operates on small symbols (2–16 wits),
//! so the full transition function
//! `(generation, current_pattern, data_value) → (next_pattern, transitions)`
//! fits in a dense table that [`SymbolLut::build`] precompiles once per
//! codec. Row encoding then becomes a table walk over raw `u64` words —
//! no [`Pattern`] construction, no trait dispatch, no per-symbol
//! validation — which is where WOM-codec throughput comes from (cf. the
//! word-level treatment in the WIRE and fine-grain coset-coding PCM
//! literature).
//!
//! The table is bit-identical to the code it was built from *by
//! construction*: every entry is the memoized result of one
//! [`WomCode::encode`] / [`WomCode::decode`] call, including the
//! implementation-defined decode of non-codewords. Codes whose geometry
//! would need more than [`SymbolLut::MAX_TABLE_ENTRIES`] encode entries
//! (e.g. [`crate::rs2::Rs2Code`] at `k ≥ 5`, wide identity codes) do not
//! get a table; [`crate::block::BlockCodec`] falls back to the per-symbol
//! reference path for them.

use crate::code::WomCode;
use crate::wit::{Pattern, Transitions};

/// Packed encode-table entry layout (one `u32` per entry):
///
/// * bits `0..16` — the next pattern's bits;
/// * bits `16..22` — SET transition count (`0 → 1` flips);
/// * bits `22..28` — RESET transition count (`1 → 0` flips);
/// * bit `31` — entry valid (clear means the symbol code errors for this
///   `(generation, pattern, data)` triple, e.g. an illegal transition).
const NEXT_MASK: u32 = 0xFFFF;
const SETS_SHIFT: u32 = 16;
const RESETS_SHIFT: u32 = 22;
const COUNT_MASK: u32 = 0x3F;
const VALID_BIT: u32 = 1 << 31;

/// A dense, validated lookup table for one symbol [`WomCode`].
///
/// ```
/// use wom_code::{Inverted, Rs23Code, SymbolLut, WomCode};
///
/// let code = Inverted::new(Rs23Code::new());
/// let lut = SymbolLut::build(&code).expect("rs23 is tiny");
/// // Every lookup agrees with the code it memoizes:
/// let erased = code.initial_pattern().bits();
/// let (next, t) = lut.encode(0, erased, 0b01).expect("legal first write");
/// assert_eq!(next, code.encode(0, 0b01, code.initial_pattern()).unwrap().bits());
/// assert_eq!(t.sets, 0); // inverted codes rewrite RESET-only
/// assert_eq!(lut.decode(next), 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolLut {
    data_bits: u32,
    wits: u32,
    writes: u32,
    values: usize,
    patterns: usize,
    /// `entries[(gen * patterns + pattern) * values + data]`.
    entries: Box<[u32]>,
    /// `decode[pattern]` — the code's decode of every possible pattern.
    decode: Box<[u16]>,
}

impl SymbolLut {
    /// Upper bound on `writes × 2^wits × 2^data_bits`; larger geometries
    /// are not tabulated and use the per-symbol reference path instead.
    pub const MAX_TABLE_ENTRIES: usize = 1 << 22;

    /// Widest symbol (in wits or data bits) a table entry can represent.
    pub const MAX_SYMBOL_BITS: u32 = 16;

    /// Precompiles `code` into dense tables, or `None` when the geometry
    /// is too large to tabulate (see [`Self::MAX_TABLE_ENTRIES`]).
    #[must_use]
    pub fn build<C: WomCode + ?Sized>(code: &C) -> Option<Self> {
        let data_bits = code.data_bits();
        let wits = code.wits();
        let writes = code.writes();
        if data_bits > Self::MAX_SYMBOL_BITS || wits > Self::MAX_SYMBOL_BITS || writes == 0 {
            return None;
        }
        let values = 1usize << data_bits;
        let patterns = 1usize << wits;
        let total = (writes as usize)
            .checked_mul(patterns)?
            .checked_mul(values)?;
        if total > Self::MAX_TABLE_ENTRIES {
            return None;
        }
        let wlen = wits as usize;
        let mut entries = vec![0u32; total].into_boxed_slice();
        for gen in 0..writes {
            for bits in 0..patterns {
                let current = Pattern::from_bits(bits as u64, wlen);
                for data in 0..values {
                    let idx = (gen as usize * patterns + bits) * values + data;
                    if let Ok(next) = code.encode(gen, data as u64, current) {
                        let t = current
                            .transitions_to(next)
                            .expect("encode preserves width");
                        entries[idx] = VALID_BIT
                            | (next.bits() as u32 & NEXT_MASK)
                            | ((t.sets & COUNT_MASK) << SETS_SHIFT)
                            | ((t.resets & COUNT_MASK) << RESETS_SHIFT);
                    }
                }
            }
        }
        let decode = (0..patterns)
            .map(|bits| code.decode(Pattern::from_bits(bits as u64, wlen)) as u16)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Some(Self {
            data_bits,
            wits,
            writes,
            values,
            patterns,
            entries,
            decode,
        })
    }

    /// Data bits per symbol of the tabulated code.
    #[must_use]
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Wits per symbol of the tabulated code.
    #[must_use]
    pub fn wits(&self) -> u32 {
        self.wits
    }

    /// Write generations the table covers (the code's `writes()`).
    #[must_use]
    pub fn writes(&self) -> u32 {
        self.writes
    }

    /// Total encode-table entries (for size accounting).
    #[must_use]
    pub fn table_entries(&self) -> usize {
        self.entries.len()
    }

    /// Looks up one symbol encode: the next pattern's bits and the wit
    /// transitions from `current`. Returns `None` exactly when the
    /// tabulated code's [`WomCode::encode`] errors for this triple (the
    /// caller re-runs the code to surface the precise error).
    ///
    /// # Panics
    ///
    /// Panics (debug) / indexes out of range (release) if `gen`,
    /// `current`, or `data` exceed the tabulated geometry; the block
    /// codec validates them once per row, not once per symbol.
    #[inline]
    #[must_use]
    pub fn encode(&self, gen: u32, current: u64, data: u64) -> Option<(u64, Transitions)> {
        let e = self.entry(gen, current, data)?;
        Some((
            u64::from(e & NEXT_MASK),
            Transitions {
                sets: (e >> SETS_SHIFT) & COUNT_MASK,
                resets: (e >> RESETS_SHIFT) & COUNT_MASK,
            },
        ))
    }

    /// Like [`Self::encode`] but returns only the next pattern's bits —
    /// the row fast path counts transitions word-parallel instead.
    #[inline]
    #[must_use]
    pub fn encode_bits(&self, gen: u32, current: u64, data: u64) -> Option<u64> {
        self.entry(gen, current, data)
            .map(|e| u64::from(e & NEXT_MASK))
    }

    #[inline]
    fn entry(&self, gen: u32, current: u64, data: u64) -> Option<u32> {
        let idx = (gen as usize * self.patterns + current as usize) * self.values + data as usize;
        let e = self.entries[idx];
        (e & VALID_BIT != 0).then_some(e)
    }

    /// Looks up the decode of a pattern (total over all `2^wits`
    /// patterns, exactly as the tabulated code's [`WomCode::decode`]).
    #[inline]
    #[must_use]
    pub fn decode(&self, pattern: u64) -> u64 {
        u64::from(self.decode[pattern as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flip::FlipCode;
    use crate::identity::IdentityCode;
    use crate::inverted::Inverted;
    use crate::rs2::Rs2Code;
    use crate::rs23::Rs23Code;

    #[test]
    fn rs23_table_matches_code_everywhere() {
        let code = Rs23Code::new();
        let lut = SymbolLut::build(&code).unwrap();
        assert_eq!(lut.table_entries(), 2 * 8 * 4);
        for gen in 0..2 {
            for bits in 0..8u64 {
                let p = Pattern::from_bits(bits, 3);
                for data in 0..4u64 {
                    match code.encode(gen, data, p) {
                        Ok(next) => {
                            let (nb, t) = lut.encode(gen, bits, data).unwrap();
                            assert_eq!(nb, next.bits());
                            assert_eq!(t, p.transitions_to(next).unwrap());
                        }
                        Err(_) => assert!(lut.encode(gen, bits, data).is_none()),
                    }
                }
                assert_eq!(lut.decode(bits), code.decode(p));
            }
        }
    }

    #[test]
    fn inverted_codes_tabulate_reset_only_rewrites() {
        let code = Inverted::new(Rs23Code::new());
        let lut = SymbolLut::build(&code).unwrap();
        for data in 0..4u64 {
            let (first, t) = lut.encode(0, 0b111, data).unwrap();
            assert_eq!(t.sets, 0, "inverted first writes are RESET-only");
            for y in 0..4u64 {
                let (_, t2) = lut.encode(1, first, y).unwrap();
                assert_eq!(t2.sets, 0, "inverted rewrites are RESET-only");
            }
        }
    }

    #[test]
    fn oversized_geometries_are_refused() {
        // k = 5 ⇒ 31 wits ⇒ 2^31 patterns: far past the table budget.
        assert!(SymbolLut::build(&Rs2Code::new(5).unwrap()).is_none());
        assert!(SymbolLut::build(&IdentityCode::new(32).unwrap()).is_none());
        // Flip t = 16 is 2 × 16 × 65536 entries: comfortably inside.
        assert!(SymbolLut::build(&FlipCode::new(16).unwrap()).is_some());
        assert!(SymbolLut::build(&FlipCode::new(24).unwrap()).is_none());
    }

    #[test]
    fn geometry_accessors_mirror_the_code() {
        let code = Rs2Code::new(3).unwrap();
        let lut = SymbolLut::build(&code).unwrap();
        assert_eq!(lut.data_bits(), 3);
        assert_eq!(lut.wits(), 7);
        assert_eq!(lut.writes(), 2);
    }
}
