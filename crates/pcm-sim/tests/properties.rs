//! Property-based tests of the memory simulator's invariants: work
//! conservation, latency sanity, determinism, and address decoding.

use pcm_sim::{
    AddressDecoder, AddressMapping, DecodedAddr, MemConfig, MemOp, MemoryGeometry, MemorySystem,
    ServiceClass, TimingParams,
};
use proptest::prelude::*;

/// A randomized little workload: (gap-cycles, addr-seed, is-read, fast).
fn accesses() -> impl Strategy<Value = Vec<(u8, u16, bool, bool)>> {
    proptest::collection::vec(
        (any::<u8>(), any::<u16>(), any::<bool>(), any::<bool>()),
        1..80,
    )
}

proptest! {
    /// Every enqueued demand access completes exactly once, whatever the
    /// interleaving of arrivals, banks, and classes.
    #[test]
    fn work_is_conserved(ops in accesses()) {
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut submitted = 0u64;
        for (gap, addr_seed, is_read, fast) in ops {
            let now = mem.now() + u64::from(gap);
            mem.advance_to(now).unwrap();
            let addr = u64::from(addr_seed) * 64;
            let (op, class) = if is_read {
                (MemOp::Read, ServiceClass::Read)
            } else if fast {
                (MemOp::Write, ServiceClass::ResetOnlyWrite)
            } else {
                (MemOp::Write, ServiceClass::Write)
            };
            if mem.enqueue(op, addr, class).is_ok() {
                submitted += 1;
            }
        }
        mem.drain();
        let s = mem.stats();
        prop_assert_eq!(s.read_latency.count + s.write_latency.count, submitted);
    }

    /// No completion can be faster than its service class's raw latency.
    #[test]
    fn latency_never_beats_service_time(ops in accesses()) {
        let t = TimingParams::paper_pcm();
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut all = Vec::new();
        for (gap, addr_seed, is_read, fast) in ops {
            let now = mem.now() + u64::from(gap);
            all.extend(mem.advance_to(now).unwrap());
            let addr = u64::from(addr_seed) * 64;
            let (op, class) = if is_read {
                (MemOp::Read, ServiceClass::Read)
            } else if fast {
                (MemOp::Write, ServiceClass::ResetOnlyWrite)
            } else {
                (MemOp::Write, ServiceClass::Write)
            };
            let _ = mem.enqueue(op, addr, class);
        }
        all.extend(mem.drain());
        for c in all {
            let min = match c.class {
                ServiceClass::Read => t.read_cycles() + t.burst_cycles(),
                ServiceClass::Write => t.write_cycles(),
                ServiceClass::ResetOnlyWrite => t.reset_cycles(),
                ServiceClass::RankRefresh => 0,
            };
            prop_assert!(
                c.latency() >= min,
                "{:?} finished in {} cycles, floor is {min}",
                c.class,
                c.latency()
            );
            prop_assert!(c.start >= c.arrival, "service cannot start before arrival");
        }
    }

    /// Identical inputs produce identical completion schedules.
    #[test]
    fn simulation_is_deterministic(ops in accesses()) {
        let run = |ops: &[(u8, u16, bool, bool)]| {
            let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
            let mut out = Vec::new();
            for &(gap, addr_seed, is_read, fast) in ops {
                let now = mem.now() + u64::from(gap);
                out.extend(mem.advance_to(now).unwrap());
                let (op, class) = if is_read {
                    (MemOp::Read, ServiceClass::Read)
                } else if fast {
                    (MemOp::Write, ServiceClass::ResetOnlyWrite)
                } else {
                    (MemOp::Write, ServiceClass::Write)
                };
                let _ = mem.enqueue(op, u64::from(addr_seed) * 64, class);
            }
            out.extend(mem.drain());
            out
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    /// Address decode/encode is bijective on in-range addresses for every
    /// mapping scheme.
    #[test]
    fn decode_encode_bijection(raw in any::<u64>()) {
        let g = MemoryGeometry::tiny();
        for mapping in [
            AddressMapping::RowRankBankCol,
            AddressMapping::RowColRankBank,
            AddressMapping::RowBankRankCol,
            AddressMapping::RankBankRowCol,
        ] {
            let dec = AddressDecoder::new(g, mapping).unwrap();
            let addr = (raw % g.capacity_bytes()) & !(u64::from(g.access_bytes) - 1);
            let d = dec.decode(addr);
            prop_assert!(d.rank < g.ranks);
            prop_assert!(d.bank < g.banks_per_rank);
            prop_assert!(d.row < g.rows_per_bank);
            prop_assert!(d.column < g.columns_per_row());
            prop_assert_eq!(dec.encode(d).unwrap(), addr, "{:?}", mapping);
        }
    }

    /// Distinct decoded tuples encode to distinct addresses (injectivity).
    #[test]
    fn encode_is_injective(a in 0u32..8, b in 0u32..8, r1 in 0u32..64, r2 in 0u32..64) {
        let g = MemoryGeometry::tiny();
        let dec = AddressDecoder::new(g, AddressMapping::default()).unwrap();
        let d1 = DecodedAddr { rank: a % g.ranks, bank: a % g.banks_per_rank, row: r1, column: 0 };
        let d2 = DecodedAddr { rank: b % g.ranks, bank: b % g.banks_per_rank, row: r2, column: 0 };
        let e1 = dec.encode(d1).unwrap();
        let e2 = dec.encode(d2).unwrap();
        prop_assert_eq!(d1 == d2, e1 == e2);
    }

    /// Energy accounting is monotone: more work never reduces the tally.
    #[test]
    fn energy_is_monotone(ops in accesses()) {
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut last = 0.0f64;
        for (gap, addr_seed, is_read, _) in ops {
            let now = mem.now() + u64::from(gap);
            mem.advance_to(now).unwrap();
            let (op, class) = if is_read {
                (MemOp::Read, ServiceClass::Read)
            } else {
                (MemOp::Write, ServiceClass::Write)
            };
            let _ = mem.enqueue(op, u64::from(addr_seed) * 64, class);
            let e = mem.stats().energy.total_pj();
            prop_assert!(e >= last);
            last = e;
        }
    }
}
