//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each figure has a binary (`fig5`, `fig6`, `fig7`, `table1`, `bounds`)
//! that prints the same rows/series the paper reports, plus Criterion
//! benches over the same code paths. The functions here are the shared
//! machinery: run one (architecture × workload) cell, sweep the paper's
//! parameter spaces, and format results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pcm_trace::synth::{benchmarks, WorkloadProfile};
use wom_pcm::{Architecture, RunMetrics, SystemConfig, WomPcmError, WomPcmSystem};

/// Default records per run for figure regeneration. Large enough for
/// steady-state behaviour, small enough that all 80 Fig. 5 cells run in
/// minutes.
pub const DEFAULT_RECORDS: usize = 120_000;

/// Default RNG seed, so published numbers are reproducible.
pub const DEFAULT_SEED: u64 = 2014; // the paper's year

/// Scaled-down rows per bank for experiment runs. The address space
/// behaves identically (traces wrap inside their working sets); fewer
/// rows only bound the simulator's lazily-allocated state.
pub const EXPERIMENT_ROWS_PER_BANK: u32 = 4096;

/// Runs one workload through one architecture and returns its metrics.
///
/// # Errors
///
/// Propagates [`WomPcmError`] from system construction or the run.
pub fn run_cell(
    arch: Architecture,
    profile: &WorkloadProfile,
    records: usize,
    seed: u64,
    banks_per_rank: u32,
) -> Result<RunMetrics, WomPcmError> {
    let trace = profile.generate(seed, records);
    let mut cfg = SystemConfig::paper(arch);
    // The Figs. 6-7 sweep reorganizes a fixed-capacity device: fewer banks
    // per rank means proportionally more rows per bank (and a larger
    // WOM-cache array, which has "the same number of rows ... as a
    // conventional PCM array in a bank").
    cfg.mem.geometry.banks_per_rank = banks_per_rank;
    cfg.mem.geometry.rows_per_bank = EXPERIMENT_ROWS_PER_BANK * 32 / banks_per_rank;
    let mut sys = WomPcmSystem::new(cfg)?;
    sys.run_trace(trace)
}

/// One benchmark's row of Fig. 5: normalized write and read latency for
/// each of the paper's four architectures (baseline first, always 1.0).
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub benchmark: String,
    /// Normalized mean write latency per architecture, Fig. 5 legend
    /// order.
    pub write: [f64; 4],
    /// Normalized mean read latency per architecture.
    pub read: [f64; 4],
}

/// Regenerates Fig. 5 (both panels) for the paper's 20 workloads.
///
/// # Errors
///
/// Propagates errors from any cell.
///
/// # Panics
///
/// Panics if a run records no reads or writes (cannot happen for the
/// bundled profiles with a non-trivial record count).
pub fn fig5(records: usize, seed: u64) -> Result<Vec<Fig5Row>, WomPcmError> {
    let mut rows = Vec::new();
    for profile in benchmarks::all() {
        let cells: Vec<RunMetrics> = Architecture::all_paper()
            .iter()
            .map(|&arch| run_cell(arch, &profile, records, seed, 32))
            .collect::<Result<_, _>>()?;
        let base = &cells[0];
        let write = [
            1.0,
            cells[1]
                .normalized_write_latency(base)
                .expect("writes recorded"),
            cells[2]
                .normalized_write_latency(base)
                .expect("writes recorded"),
            cells[3]
                .normalized_write_latency(base)
                .expect("writes recorded"),
        ];
        let read = [
            1.0,
            cells[1]
                .normalized_read_latency(base)
                .expect("reads recorded"),
            cells[2]
                .normalized_read_latency(base)
                .expect("reads recorded"),
            cells[3]
                .normalized_read_latency(base)
                .expect("reads recorded"),
        ];
        rows.push(Fig5Row {
            benchmark: profile.name.clone(),
            write,
            read,
        });
    }
    Ok(rows)
}

/// The paper's "on average across the benchmarks": arithmetic mean of
/// per-benchmark normalized values for one architecture column.
#[must_use]
pub fn average(rows: &[Fig5Row], arch_index: usize, writes: bool) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let sum: f64 = rows
        .iter()
        .map(|r| {
            if writes {
                r.write[arch_index]
            } else {
                r.read[arch_index]
            }
        })
        .sum();
    sum / rows.len() as f64
}

/// One point of Figs. 6–7: WCPCM at a given banks/rank.
#[derive(Debug, Clone)]
pub struct BankSweepPoint {
    /// Banks per rank (4, 8, 16, or 32 in the paper).
    pub banks_per_rank: u32,
    /// WOM-cache demand hit rate (Fig. 6).
    pub hit_rate: f64,
    /// WOM-cache write hit rate.
    pub write_hit_rate: f64,
    /// Mean demand write latency in ns (normalized externally for Fig. 7).
    pub mean_write_ns: f64,
}

/// Regenerates the Figs. 6–7 banks/rank sweep for one workload.
///
/// # Errors
///
/// Propagates errors from any cell.
///
/// # Panics
///
/// Panics if a run reports no cache statistics (cannot happen: the sweep
/// always runs WCPCM).
pub fn bank_sweep(
    profile: &WorkloadProfile,
    records: usize,
    seed: u64,
) -> Result<Vec<BankSweepPoint>, WomPcmError> {
    [4u32, 8, 16, 32]
        .iter()
        .map(|&banks| {
            let m = run_cell(Architecture::Wcpcm, profile, records, seed, banks)?;
            let cache = m.cache.expect("wcpcm reports cache stats");
            Ok(BankSweepPoint {
                banks_per_rank: banks,
                hit_rate: cache.hit_rate(),
                write_hit_rate: cache.write_hit_rate(),
                mean_write_ns: m.mean_write_ns(),
            })
        })
        .collect()
}

/// Formats a ratio as the paper's percentages ("reduced by 20.1%").
#[must_use]
pub fn reduction_pct(normalized: f64) -> f64 {
    (1.0 - normalized) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cell_produces_metrics() {
        let profile = benchmarks::by_name("stringsearch").unwrap();
        let m = run_cell(Architecture::Baseline, &profile, 2_000, 1, 32).unwrap();
        assert!(m.writes.count > 0);
        assert!(m.reads.count > 0);
    }

    #[test]
    fn averages_and_reductions() {
        let rows = vec![
            Fig5Row {
                benchmark: "a".into(),
                write: [1.0, 0.8, 0.4, 0.5],
                read: [1.0, 0.9, 0.5, 0.6],
            },
            Fig5Row {
                benchmark: "b".into(),
                write: [1.0, 0.6, 0.6, 0.5],
                read: [1.0, 0.9, 0.5, 0.6],
            },
        ];
        assert!((average(&rows, 1, true) - 0.7).abs() < 1e-12);
        assert!((average(&rows, 2, false) - 0.5).abs() < 1e-12);
        assert!((reduction_pct(0.799) - 20.1).abs() < 0.11);
        assert_eq!(average(&[], 0, true), 0.0);
    }

    #[test]
    fn bank_sweep_runs_all_four_points() {
        let profile = benchmarks::by_name("stringsearch").unwrap();
        let points = bank_sweep(&profile, 2_000, 1).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].banks_per_rank, 4);
        assert_eq!(points[3].banks_per_rank, 32);
    }
}

/// Minimal JSON emission for figure results — enough structure for
/// plotting scripts without pulling a serialization dependency into the
/// workspace.
pub mod json {
    use super::{BankSweepPoint, Fig5Row};

    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    /// Formats Fig. 5 rows as a JSON array of objects.
    #[must_use]
    pub fn fig5(rows: &[Fig5Row]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"benchmark\":\"{}\",\"write\":[{},{},{},{}],\"read\":[{},{},{},{}]}}",
                    esc(&r.benchmark),
                    r.write[0],
                    r.write[1],
                    r.write[2],
                    r.write[3],
                    r.read[0],
                    r.read[1],
                    r.read[2],
                    r.read[3],
                )
            })
            .collect();
        format!("[{}]", body.join(","))
    }

    /// Formats one workload's bank sweep as a JSON array of objects.
    #[must_use]
    pub fn bank_sweep(benchmark: &str, points: &[BankSweepPoint]) -> String {
        let body: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{{\"banks_per_rank\":{},\"hit_rate\":{},\"write_hit_rate\":{},\"mean_write_ns\":{}}}",
                    p.banks_per_rank, p.hit_rate, p.write_hit_rate, p.mean_write_ns
                )
            })
            .collect();
        format!(
            "{{\"benchmark\":\"{}\",\"points\":[{}]}}",
            esc(benchmark),
            body.join(",")
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fig5_json_shape() {
            let rows = vec![Fig5Row {
                benchmark: "a\"b".into(),
                write: [1.0, 0.8, 0.5, 0.6],
                read: [1.0, 0.9, 0.8, 0.8],
            }];
            let j = fig5(&rows);
            assert!(j.starts_with('[') && j.ends_with(']'));
            assert!(j.contains("\\\"b"), "quotes must be escaped: {j}");
            assert!(j.contains("\"write\":[1,0.8,0.5,0.6]"));
        }

        #[test]
        fn sweep_json_shape() {
            let points = vec![BankSweepPoint {
                banks_per_rank: 4,
                hit_rate: 0.5,
                write_hit_rate: 0.75,
                mean_write_ns: 100.0,
            }];
            let j = bank_sweep("qsort", &points);
            assert!(j.contains("\"banks_per_rank\":4"));
            assert!(j.contains("\"benchmark\":\"qsort\""));
        }
    }
}
