//! WOM-code PCM: per-row rewrite budgets decide RESET-only vs α-writes.

use super::refresh::RefreshDriver;
use super::{ArchPolicy, ArraySide, ReadAction, WriteAction};
use crate::config::SystemConfig;
use crate::engine::EngineCore;
use crate::error::WomPcmError;
use crate::hidden_page::HiddenPageTable;
use crate::observe::Event;
use crate::snapshot::SnapshotError;
use crate::wom_state::{BudgetGranularity, WomStateTable};
use pcm_sim::{Completion, DecodedAddr, MemOp, ServiceClass, SnapReader, SnapWriter};

/// Main memory is WOM-coded: each write within a row's rewrite budget is
/// a RESET-only write; the α-write past the budget pays the full SET
/// latency. Owns the [`WomStateTable`] tracking budgets, the optional
/// hidden-page companion table, and — when wrapped by
/// [`super::WomCodeRefreshPolicy`] — the PCM-refresh driver.
#[derive(Debug)]
pub struct WomCodePolicy {
    wom: WomStateTable,
    /// Hidden-page table, when companion traffic is charged.
    hidden: Option<HiddenPageTable>,
    /// PCM-refresh machinery, present only under `WomCodeRefresh`.
    refresh: Option<RefreshDriver>,
}

impl WomCodePolicy {
    /// Builds the policy for plain WOM-code PCM (no refresh engine).
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::InvalidConfig`] for inconsistent parameters.
    pub fn new(config: &SystemConfig) -> Result<Self, WomPcmError> {
        Self::with_driver(config, None)
    }

    /// Builds the policy with an optional refresh driver (used by
    /// [`super::WomCodeRefreshPolicy`]).
    pub(super) fn with_driver(
        config: &SystemConfig,
        refresh: Option<RefreshDriver>,
    ) -> Result<Self, WomPcmError> {
        let g = config.mem.geometry;
        let budget_columns = match config.budget_granularity {
            BudgetGranularity::Row => 1,
            BudgetGranularity::Column => g.columns_per_row(),
        };
        let wom = WomStateTable::with_cold_policy(
            config.rewrite_limit,
            budget_columns,
            config.cold_policy,
        );
        let hidden = if config.charge_hidden_page_traffic {
            Some(HiddenPageTable::new(g, config.expansion)?)
        } else {
            None
        };
        Ok(Self {
            wom,
            hidden,
            refresh,
        })
    }

    /// Runs the refresh driver's periodic tick (refresh variant only).
    pub(super) fn tick(&mut self, core: &mut EngineCore) -> Result<(), WomPcmError> {
        self.refresh
            .as_mut()
            .ok_or_else(|| WomPcmError::Internal("tick requires the refresh driver".into()))?
            .tick(core)
    }

    /// Computes the hidden-page companion access for a WOM-coded main-
    /// memory demand access, when that traffic is charged.
    fn hidden_companion(
        &mut self,
        core: &mut EngineCore,
        op: MemOp,
        addr: u64,
    ) -> Result<Option<u64>, WomPcmError> {
        let Some(hidden) = &mut self.hidden else {
            return Ok(None);
        };
        let g = core.config().mem.geometry;
        let d = core.decoder().decode(addr);
        let flat_bank = d.flat_bank(&g);
        let visible = d.row % hidden.visible_rows();
        let hidden_row = match op {
            // Writes recruit a hidden page on first touch...
            MemOp::Write => hidden.recruit(flat_bank, visible)?,
            // ...reads only touch one that already exists.
            MemOp::Read => match hidden.lookup(flat_bank, visible) {
                Some(row) => row,
                None => return Ok(None),
            },
        };
        let companion = core.decoder().encode(DecodedAddr {
            row: hidden_row,
            column: 0,
            ..d
        })?;
        core.note_hidden_page_access();
        Ok(Some(companion))
    }
}

impl ArchPolicy for WomCodePolicy {
    fn on_read(&mut self, core: &mut EngineCore, addr: u64) -> Result<ReadAction, WomPcmError> {
        let physical = core.remap_main(addr)?;
        core.check_read(physical)?;
        let companion = self.hidden_companion(core, MemOp::Read, physical)?;
        Ok(ReadAction::Main {
            addr: physical,
            companion,
        })
    }

    fn on_write(&mut self, core: &mut EngineCore, addr: u64) -> Result<WriteAction, WomPcmError> {
        let addr = core.remap_main(addr)?;
        core.check_write(addr)?;
        let d = core.decoder().decode(addr);
        let row_id = d.flat_row(&core.config().mem.geometry);
        if core.try_coalesce(false, row_id) {
            return Ok(WriteAction::Coalesced);
        }
        let budget_col = super::budget_column(core.config(), &d);
        let kind = self.wom.classify_write(row_id, budget_col);
        if let Some(driver) = &mut self.refresh {
            // A row with any exhausted column is a refresh candidate;
            // refresh re-initializes the whole row.
            if self.wom.row_exhausted(row_id) {
                driver.record_exhausted(d.rank, d.bank, d.row);
                core.emit(Event::BudgetExhausted {
                    cycle: core.now(),
                    side: ArraySide::Main,
                    rank: d.rank,
                    bank: d.bank,
                    row: d.row,
                });
            }
        }
        let class = if kind.is_fast() {
            ServiceClass::ResetOnlyWrite
        } else {
            ServiceClass::Write
        };
        let companion = self.hidden_companion(core, MemOp::Write, addr)?;
        Ok(WriteAction::Main {
            addr,
            class,
            row_key: row_id,
            companion,
        })
    }

    fn on_completion(
        &mut self,
        core: &mut EngineCore,
        side: ArraySide,
        c: &Completion,
    ) -> Result<(), WomPcmError> {
        if side != ArraySide::Main {
            return Err(WomPcmError::Internal(
                "WOM-code PCM has no cache array".into(),
            ));
        }
        let driver = self.refresh.as_mut().ok_or_else(|| {
            WomPcmError::Internal("refresh completion without a refresh driver".into())
        })?;
        if let Some((rank, bank, row)) = driver.on_refresh_completion(core, c)? {
            // §3.2: the refresh writes the data back in the first-write
            // pattern, consuming one generation.
            let d = DecodedAddr {
                rank,
                bank,
                row,
                column: 0,
            };
            self.wom
                .mark_copied(d.flat_row(&core.config().mem.geometry));
        }
        Ok(())
    }

    fn on_wear_level_copy(&mut self, core: &mut EngineCore, dest: DecodedAddr) {
        let row_id = dest.flat_row(&core.config().mem.geometry);
        self.wom.mark_copied(row_id);
        if let Some(driver) = &mut self.refresh {
            driver.row_refreshed(dest.rank, dest.bank, dest.row);
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.wom.save_state(w);
        match &self.hidden {
            None => w.put_bool(false),
            Some(h) => {
                w.put_bool(true);
                h.save_state(w);
            }
        }
        match &self.refresh {
            None => w.put_bool(false),
            Some(d) => {
                w.put_bool(true);
                d.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), WomPcmError> {
        self.wom = WomStateTable::load_state(r)?;
        let has_hidden = r.take_bool()?;
        match (&mut self.hidden, has_hidden) {
            (Some(h), true) => *h = HiddenPageTable::load_state(h.geometry(), r)?,
            (None, false) => {}
            _ => {
                return Err(WomPcmError::Snapshot(SnapshotError::Corrupt(
                    "hidden-page presence disagrees with the configuration",
                )))
            }
        }
        let has_refresh = r.take_bool()?;
        match (&mut self.refresh, has_refresh) {
            (Some(d), true) => d.load_state(r)?,
            (None, false) => {}
            _ => {
                return Err(WomPcmError::Snapshot(SnapshotError::Corrupt(
                    "refresh-driver presence disagrees with the configuration",
                )))
            }
        }
        Ok(())
    }
}
