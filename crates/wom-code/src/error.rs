//! Error types for WOM-code construction and encoding.

use core::fmt;

/// Errors produced by WOM-code constructors, encoders, and block codecs.
///
/// Every fallible public function in this crate returns this type. The
/// variants distinguish *usage* errors (writing past the rewrite limit,
/// out-of-range data) from *construction* errors (a user-supplied code table
/// that is not actually a WOM code).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WomCodeError {
    /// The requested write generation is at or past the code's rewrite limit
    /// `t`; the memory must be erased (the PCM α-write) before it can hold
    /// new data.
    GenerationExhausted {
        /// The generation that was requested (0-based).
        requested: u32,
        /// The code's total number of supported writes `t`.
        limit: u32,
    },
    /// The data value does not fit in the code's `data_bits()`.
    DataOutOfRange {
        /// The offending value.
        value: u64,
        /// Number of data bits the code encodes per symbol.
        data_bits: u32,
    },
    /// Encoding would require a transition that the write-once orientation
    /// forbids (e.g. `1 → 0` in a set-only memory).
    IllegalTransition {
        /// Bit position (within the pattern) of the first illegal transition.
        bit: u32,
    },
    /// A pattern or buffer length did not match the code's geometry.
    LengthMismatch {
        /// Expected length in bits.
        expected: usize,
        /// Actual length in bits.
        actual: usize,
    },
    /// A user-supplied code table failed validation (not a WOM code).
    InvalidTable(String),
}

impl fmt::Display for WomCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GenerationExhausted { requested, limit } => write!(
                f,
                "write generation {requested} exceeds the code's rewrite limit of {limit}"
            ),
            Self::DataOutOfRange { value, data_bits } => {
                write!(f, "data value {value:#x} does not fit in {data_bits} bits")
            }
            Self::IllegalTransition { bit } => {
                write!(
                    f,
                    "encoding requires a forbidden wit transition at bit {bit}"
                )
            }
            Self::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "pattern length mismatch: expected {expected} bits, got {actual}"
                )
            }
            Self::InvalidTable(reason) => write!(f, "invalid WOM-code table: {reason}"),
        }
    }
}

impl std::error::Error for WomCodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = WomCodeError::GenerationExhausted {
            requested: 2,
            limit: 2,
        };
        let s = e.to_string();
        assert!(s.starts_with("write generation"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WomCodeError>();
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            WomCodeError::GenerationExhausted {
                requested: 1,
                limit: 1,
            },
            WomCodeError::DataOutOfRange {
                value: 9,
                data_bits: 2,
            },
            WomCodeError::IllegalTransition { bit: 3 },
            WomCodeError::LengthMismatch {
                expected: 3,
                actual: 4,
            },
            WomCodeError::InvalidTable("duplicate pattern".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
