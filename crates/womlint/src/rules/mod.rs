//! Rule implementations, one module per family.
//!
//! The token-level families (`determinism`, `ratchet`, the suppression
//! comment checks) consume a single [`crate::scan::FileScan`]; the
//! structural families (`hotpath`, `coverage`, `config_check`) consume
//! the whole [`crate::callgraph::Workspace`] — they need cross-file
//! visibility to follow calls and match `impl` blocks to struct
//! definitions.

pub mod config_check;
pub mod coverage;
pub mod determinism;
pub mod hotpath;
pub mod ratchet;
pub mod suppression;
