//! `womsim` — command-line driver for the WOM-code PCM stack.
//!
//! ```console
//! $ womsim list                          # bundled workload profiles
//! $ womsim gen qsort 100000 7 > q.trace  # emit a DRAMSim2-format trace
//! $ womsim stats q.trace                 # trace characteristics
//! $ womsim run wcpcm q.trace             # simulate a trace file
//! $ womsim run refresh qsort:50000       # or a bundled workload directly
//! $ womsim run wom qsort:50000 --verify  # with functional data checking
//! $ womsim compare qsort:50000           # all four architectures, one table
//! ```

use std::fs::File;
use std::io::{self, BufReader, Write};
use std::process::ExitCode;

use wom_pcm_bench::cli::{ObserveSpec, Parser};
use wom_pcm_bench::run_configs_parallel;
use womcode_pcm::arch::{Architecture, SystemBuilder};
use womcode_pcm::sim::MemOp;
use womcode_pcm::trace::format::{write_trace, TraceReader};
use womcode_pcm::trace::synth::benchmarks;
use womcode_pcm::trace::{TraceRecord, TraceStats};

const USAGE: &str = "\n  womsim list\n  womsim gen <workload> <records> [seed] [--binary]\n  \
     womsim stats <trace-file>\n  womsim run <baseline|wom|refresh|wcpcm> \
     <trace-file | workload:records[:seed]> [--verify] \
     [--observe PATH [--epoch-cycles N]]\n  \
     womsim compare <trace-file | workload:records[:seed]> [--threads N]";

fn usage() -> ExitCode {
    eprintln!("usage:{USAGE}");
    ExitCode::from(2)
}

fn parse_arch(name: &str) -> Option<Architecture> {
    match name {
        "baseline" => Some(Architecture::Baseline),
        "wom" | "wom-code" => Some(Architecture::WomCode),
        "refresh" | "pcm-refresh" => Some(Architecture::WomCodeRefresh),
        "wcpcm" => Some(Architecture::Wcpcm),
        _ => None,
    }
}

fn load_records(spec: &str) -> Result<Vec<TraceRecord>, String> {
    // `workload:records[:seed]` selects a bundled generator...
    if let Some((name, rest)) = spec.split_once(':') {
        if let Some(profile) = benchmarks::by_name(name) {
            let mut parts = rest.split(':');
            let records: usize = parts
                .next()
                .ok_or("missing record count")?
                .parse()
                .map_err(|e| format!("bad record count: {e}"))?;
            let seed: u64 = match parts.next() {
                Some(s) => s.parse().map_err(|e| format!("bad seed: {e}"))?,
                None => 2014,
            };
            return Ok(profile.generate(seed, records));
        }
    }
    // ...anything else is a trace file path; the container is picked by
    // extension (.womtrc = binary, .lackey = Valgrind capture, else text).
    let file = File::open(spec).map_err(|e| format!("cannot open {spec}: {e}"))?;
    if spec.ends_with(".womtrc") {
        return womcode_pcm::trace::binary::read_binary(BufReader::new(file))
            .map_err(|e| e.to_string());
    }
    if spec.ends_with(".lackey") {
        // A Valgrind capture: `valgrind --tool=lackey --trace-mem=yes ...`.
        return womcode_pcm::trace::lackey::read_lackey(BufReader::new(file), 20)
            .map_err(|e| e.to_string());
    }
    TraceReader::new(BufReader::new(file))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| e.to_string())
}

fn cmd_list() -> ExitCode {
    // Write through a fallible handle so `womsim list | head` exits
    // quietly on a closed pipe instead of panicking.
    let mut out = io::stdout().lock();
    let _ = writeln!(
        out,
        "{:16}{:>14}{:>8}{:>10}{:>10}",
        "workload", "suite", "reads%", "wss MiB", "gap cyc"
    );
    for p in benchmarks::all() {
        if writeln!(
            out,
            "{:16}{:>14}{:>8.0}{:>10}{:>10.0}",
            p.name,
            p.suite.to_string(),
            p.read_fraction * 100.0,
            p.working_set_bytes >> 20,
            p.mean_gap_cycles
        )
        .is_err()
        {
            break;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_gen(args: &[String], binary: bool) -> ExitCode {
    let (Some(name), Some(records)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(profile) = benchmarks::by_name(name) else {
        eprintln!("unknown workload {name:?}; try `womsim list`");
        return ExitCode::FAILURE;
    };
    let Ok(records) = records.parse::<usize>() else {
        eprintln!("bad record count {records:?}");
        return ExitCode::FAILURE;
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2014);
    let out = io::stdout().lock();
    let result: Result<(), String> = if binary {
        womcode_pcm::trace::binary::write_binary(out, profile.generator(seed).take(records))
            .map(|_| ())
            .map_err(|e| e.to_string())
    } else {
        write_trace(out, profile.generator(seed).take(records)).map_err(|e| e.to_string())
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let Some(spec) = args.first() else {
        return usage();
    };
    let records = match load_records(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = TraceStats::from_records(records.iter().copied(), 1024);
    let mut out = io::stdout().lock();
    let _ = writeln!(out, "accesses      : {}", stats.accesses);
    let _ = writeln!(out, "reads / writes: {} / {}", stats.reads, stats.writes);
    let _ = writeln!(out, "read fraction : {:.1}%", stats.read_fraction() * 100.0);
    let _ = writeln!(out, "unique rows   : {}", stats.unique_rows);
    let _ = writeln!(out, "rewritten rows: {}", stats.rewritten_rows);
    let _ = writeln!(
        out,
        "rewrite frac  : {:.1}%",
        stats.rewrite_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "span (cycles) : {}..{}",
        stats.first_cycle, stats.last_cycle
    );
    let _ = writeln!(
        out,
        "intensity     : {:.4} accesses/cycle",
        stats.intensity()
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String], verify: bool, observe: Option<&ObserveSpec>) -> ExitCode {
    let (Some(arch_name), Some(spec)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let Some(arch) = parse_arch(arch_name) else {
        eprintln!("unknown architecture {arch_name:?}; use baseline|wom|refresh|wcpcm");
        return ExitCode::FAILURE;
    };
    let records = match load_records(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Bound lazily-allocated simulator state for interactive use.
    let mut builder = SystemBuilder::new(arch)
        .rows_per_bank(4096)
        .verify_data(verify);
    if let Some(obs) = observe {
        builder = builder.epoch_cycles(obs.epoch_cycles);
    }
    let mut sys = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("configuration rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match sys.run_trace(records) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(obs) = observe {
        match sys.take_epochs() {
            Some(series) => {
                let tags = [("arch", arch.label()), ("workload", spec.as_str())];
                let write = std::fs::File::create(&obs.path).and_then(|f| {
                    womcode_pcm::arch::observe::write_jsonl(
                        &mut io::BufWriter::new(f),
                        &series,
                        &tags,
                    )
                });
                match write {
                    Ok(()) => eprintln!(
                        "wrote {} epochs ({} cycles each) to {}",
                        series.len(),
                        series.epoch_cycles(),
                        obs.path
                    ),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", obs.path);
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("internal error: epoch observation recorded no series");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut out = io::stdout().lock();
    let _ = writeln!(out, "architecture : {}", arch.label());
    let _ = writeln!(out, "{metrics}");
    let _ = writeln!(
        out,
        "tail latency : read p95 {:.0} ns, write p95 {:.0} ns",
        metrics.percentile_ns(MemOp::Read, 0.95),
        metrics.percentile_ns(MemOp::Write, 0.95)
    );
    let _ = writeln!(
        out,
        "energy       : {:.1} uJ ({:.0} pJ/access)",
        metrics.energy.total_uj(),
        metrics.energy_per_access_pj()
    );
    let _ = writeln!(
        out,
        "wear (main)  : {} rows, max {} writes/row, cv {:.2}",
        metrics.wear_main.rows, metrics.wear_main.max, metrics.wear_main.cv
    );
    if verify {
        let _ = writeln!(
            out,
            "data check   : {} reads decoded correctly",
            metrics.data_reads_verified
        );
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String], threads: usize) -> ExitCode {
    let Some(spec) = args.first() else {
        return usage();
    };
    let records = match load_records(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The four architectures are independent deterministic runs — dispatch
    // them to the bench crate's parallel sweep runner.
    let jobs: Vec<_> = Architecture::all_paper()
        .iter()
        .map(|&arch| {
            let cfg = SystemBuilder::new(arch).rows_per_bank(4096).into_config();
            (cfg, records.clone())
        })
        .collect();
    let metrics = match run_configs_parallel(&jobs, threads) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = io::stdout().lock();
    let _ = writeln!(
        out,
        "{:22}{:>11}{:>11}{:>11}{:>11}{:>10}{:>12}",
        "architecture", "write ns", "read ns", "w p95 ns", "r p95 ns", "fast %", "energy uJ"
    );
    let mut base_write = 0.0;
    for (arch, m) in Architecture::all_paper().iter().zip(&metrics) {
        if *arch == Architecture::Baseline {
            base_write = m.mean_write_ns();
        }
        let _ = writeln!(
            out,
            "{:22}{:>11.1}{:>11.1}{:>11.0}{:>11.0}{:>9.1}%{:>12.1}",
            arch.label(),
            m.mean_write_ns(),
            m.mean_read_ns(),
            m.percentile_ns(MemOp::Write, 0.95),
            m.percentile_ns(MemOp::Read, 0.95),
            m.fast_write_fraction() * 100.0,
            m.energy.total_uj(),
        );
    }
    let _ = writeln!(
        out,
        "(baseline mean write: {base_write:.1} ns; lower is better everywhere)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut cli = Parser::from_env(USAGE);
    let threads = cli.threads();
    let observe = cli.observe();
    let binary = cli.flag("--binary");
    let verify = cli.flag("--verify");
    let Some(command) = cli.next_arg() else {
        return usage();
    };
    let mut rest = Vec::new();
    while let Some(arg) = cli.next_arg() {
        rest.push(arg);
    }
    cli.finish();
    if observe.is_some() && command != "run" {
        eprintln!("error: --observe only applies to `womsim run`");
        return ExitCode::from(2);
    }
    match command.as_str() {
        "list" => cmd_list(),
        "gen" => cmd_gen(&rest, binary),
        "stats" => cmd_stats(&rest),
        "run" => cmd_run(&rest, verify, observe.as_ref()),
        "compare" => cmd_compare(&rest, threads),
        _ => usage(),
    }
}
