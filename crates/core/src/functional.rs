//! A data-bearing WOM-code PCM model: real encode/decode, not just timing.
//!
//! [`crate::system::WomPcmSystem`] tracks only *latency-relevant* state
//! (write generations) so that 16 GiB devices simulate fast. This module
//! complements it with a functional model that stores actual wit patterns
//! through [`wom_code::BlockCodec`], proving end-to-end that the
//! architecture's bookkeeping agrees with what real cells would do: every
//! in-budget write really is RESET-only, every α-write really needs SET,
//! and data always decodes back intact.

use crate::error::WomPcmError;
use crate::rowmap::RowMap;
use crate::wom_state::WriteKind;
use pcm_sim::{SnapError, SnapReader, SnapWriter};
use wom_code::{BlockCodec, RowScratch, Transitions, WitBuffer, WomCode};

/// Outcome of one functional row write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalWrite {
    /// Whether the write was in budget or an α-write.
    pub kind: WriteKind,
    /// The wit transitions the cells actually underwent (for an α-write,
    /// including the erase back to the initial state).
    pub transitions: Transitions,
}

/// A sparse, data-bearing WOM-coded memory: rows materialize on first
/// write.
///
/// ```
/// use wom_pcm::functional::FunctionalMemory;
/// use wom_code::{Inverted, Rs23Code};
///
/// # fn main() -> Result<(), wom_pcm::WomPcmError> {
/// // 64-byte rows under the paper's inverted <2^2>^2/3 code.
/// let mut mem = FunctionalMemory::new(Inverted::new(Rs23Code::new()), 64)?;
/// let w1 = mem.write(0, &[0xAA; 64])?;
/// let w2 = mem.write(0, &[0x55; 64])?;
/// assert!(w1.kind.is_fast() && w2.kind.is_fast());
/// assert_eq!(w1.transitions.sets + w2.transitions.sets, 0); // RESET-only
/// let w3 = mem.write(0, &[0x0F; 64])?; // budget exhausted
/// assert!(!w3.kind.is_fast());
/// assert!(w3.transitions.sets > 0); // the alpha-write pays SET pulses
/// let mut line = [0u8; 64];
/// assert!(mem.read_into(0, &mut line));
/// assert_eq!(line, [0x0F; 64]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalMemory<C> {
    codec: BlockCodec<C>,
    /// Wits and consumed generations per touched row, in the
    /// page-grained store (line ids are dense and clustered).
    rows: RowMap<(WitBuffer, u32)>,
    row_bytes: usize,
    /// Reused across writes so the steady-state path never allocates.
    scratch: RowScratch,
    /// Template erased row the rewrite staging buffers are cloned from.
    erased: WitBuffer,
    /// Rows staged for the current batched rewrite (refresh burst).
    stage_lines: Vec<u64>,
    /// The staged rows' payload bytes, back to back.
    stage_data: Vec<u8>,
    /// Freshly-erased cell buffers the batch encode writes into.
    stage_cells: Vec<WitBuffer>,
}

impl<C: WomCode> FunctionalMemory<C> {
    /// Creates a memory of `row_bytes`-sized rows encoded with `code`.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Code`] if `row_bytes` is incompatible with
    /// the code's symbol size.
    pub fn new(code: C, row_bytes: usize) -> Result<Self, WomPcmError> {
        let codec = BlockCodec::new(code, row_bytes * 8)?;
        let erased = codec.erased_buffer();
        Ok(Self {
            codec,
            rows: RowMap::new(),
            row_bytes,
            scratch: RowScratch::new(),
            erased,
            stage_lines: Vec::new(),
            stage_data: Vec::new(),
            stage_cells: Vec::new(),
        })
    }

    /// Bytes per row.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// The row-level codec in use.
    #[must_use]
    pub fn codec(&self) -> &BlockCodec<C> {
        &self.codec
    }

    /// Rows materialized so far.
    #[must_use]
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Writes `data` to `row`, WOM-encoding it into the row's wits.
    ///
    /// In-budget writes rewrite the wits in place; once the code's budget
    /// is exhausted the row is erased and rewritten (α-write), with the
    /// erase's SET transitions included in the reported [`Transitions`].
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Code`] if `data` is not exactly
    /// [`row_bytes`](Self::row_bytes) long.
    pub fn write(&mut self, row: u64, data: &[u8]) -> Result<FunctionalWrite, WomPcmError> {
        let limit = self.codec.rewrite_limit();
        let entry = self
            .rows
            .get_or_insert_with(row, || (self.codec.erased_buffer(), 0));
        if entry.1 < limit {
            let gen = entry.1;
            let transitions =
                self.codec
                    .encode_row_into(gen, data, &mut entry.0, &mut self.scratch)?;
            entry.1 += 1;
            Ok(FunctionalWrite {
                kind: WriteKind::InBudget { generation: gen },
                transitions,
            })
        } else {
            // α-write: erase back to the initial pattern, then first write.
            let erased = self.codec.erased_buffer();
            let erase_t = entry.0.transitions_to(&erased)?;
            let mut fresh = erased;
            let write_t = self
                .codec
                .encode_row_into(0, data, &mut fresh, &mut self.scratch)?;
            entry.0 = fresh;
            entry.1 = 1;
            Ok(FunctionalWrite {
                kind: WriteKind::Alpha,
                transitions: Transitions {
                    sets: erase_t.sets + write_t.sets,
                    resets: erase_t.resets + write_t.resets,
                },
            })
        }
    }

    /// Reads and decodes `row`, or `None` if it was never written.
    ///
    /// Allocates the result, so it is compiled only for unit tests —
    /// every engine path reads through the allocation-free
    /// [`read_into`](Self::read_into).
    #[cfg(test)]
    #[must_use]
    fn read(&self, row: u64) -> Option<Vec<u8>> {
        self.rows
            .get(row)
            .map(|(cells, _)| self.codec.decode_row(cells).expect("stored rows decode"))
    }

    /// Reads and decodes `row` into `out` without allocating. Returns
    /// `false` (leaving `out` untouched) if the row was never written.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly [`row_bytes`](Self::row_bytes) long.
    pub fn read_into(&mut self, row: u64, out: &mut [u8]) -> bool {
        let Self {
            codec,
            rows,
            scratch,
            ..
        } = self;
        match rows.get(row) {
            Some((cells, _)) => {
                codec
                    .decode_row_into(cells, out, scratch)
                    .expect("stored rows decode");
                true
            }
            None => false,
        }
    }

    /// Refreshes `row` back to the erased WOM state (as PCM-refresh does),
    /// discarding its data. No-op for unmaterialized rows.
    pub fn refresh(&mut self, row: u64) {
        self.rows.remove(row);
    }

    /// Starts a batched rewrite (the data-preserving refresh of a whole
    /// physical row): clears any previously staged lines. Stage each
    /// line with [`rewrite_stage`](Self::rewrite_stage), then commit the
    /// burst in one batch encode with
    /// [`rewrite_commit`](Self::rewrite_commit).
    pub fn rewrite_begin(&mut self) {
        self.stage_lines.clear();
        self.stage_data.clear();
    }

    /// Stages one line's payload for the pending batched rewrite.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`row_bytes`](Self::row_bytes)
    /// long.
    pub fn rewrite_stage(&mut self, row: u64, data: &[u8]) {
        assert_eq!(data.len(), self.row_bytes, "staged line has row size");
        self.stage_lines.push(row);
        self.stage_data.extend_from_slice(data);
    }

    /// Commits the staged burst: every staged line is erased back to the
    /// initial WOM state and re-encoded at generation 0 through one
    /// [`BlockCodec::encode_rows_into`] call, amortizing kernel dispatch
    /// and LUT loads across the burst. Steady-state allocation-free once
    /// the staging buffers have warmed up.
    ///
    /// # Errors
    ///
    /// Returns [`WomPcmError::Code`] if the batch encode fails; no row
    /// is modified then.
    pub fn rewrite_commit(&mut self) -> Result<(), WomPcmError> {
        let burst = self.stage_lines.len();
        if burst == 0 {
            return Ok(());
        }
        while self.stage_cells.len() < burst {
            // womlint::allow(hotpath/transitive, reason = "staging pool grows to the burst high-water mark once, then every commit reuses it")
            self.stage_cells.push(self.erased.clone());
        }
        let Self {
            codec,
            rows,
            scratch,
            erased,
            stage_lines,
            stage_data,
            stage_cells,
            ..
        } = self;
        let Some(bufs) = stage_cells.get_mut(..burst) else {
            return Ok(());
        };
        for buf in bufs.iter_mut() {
            buf.copy_from(erased);
        }
        codec.encode_rows_into(0, stage_data, bufs, scratch)?;
        for (&line, fresh) in stage_lines.iter().zip(bufs.iter()) {
            if let Some(entry) = rows.get_mut(line) {
                entry.0.copy_from(fresh);
                entry.1 = 1;
            } else {
                // womlint::allow(hotpath/transitive, reason = "first-touch row materialization: one allocation per row lifetime, not per write")
                rows.insert(line, (fresh.clone(), 1));
            }
        }
        stage_lines.clear();
        stage_data.clear();
        Ok(())
    }

    /// Write generations consumed by `row` since its last erase.
    #[must_use]
    pub fn writes_done(&self, row: u64) -> u32 {
        self.rows.get(row).map_or(0, |&(_, gen)| gen)
    }

    /// Serializes the materialized rows for snapshot/restore. The codec,
    /// scratch, and staging buffers are reconstructed state and are not
    /// written; rows go out in ascending key order as 64-bit wit chunks.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.rows.len());
        for (key, (cells, gen)) in self.rows.iter() {
            w.put_u64(key);
            w.put_u32(*gen);
            let bits = cells.len();
            for offset in (0..bits).step_by(64) {
                let width = 64.min(bits - offset);
                w.put_u64(cells.chunk(offset, width));
            }
        }
    }

    /// Loads rows written by [`save_state`](Self::save_state) into this
    /// (identically configured) memory, replacing any existing rows.
    ///
    /// # Errors
    ///
    /// Propagates payload truncation; [`SnapError::Corrupt`] when a wit
    /// chunk has bits beyond the row's cell count.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let bits = self.erased.len();
        let len = r.take_len(12 + bits.div_ceil(64) * 8)?;
        self.rows = RowMap::new();
        self.stage_lines.clear();
        self.stage_data.clear();
        for _ in 0..len {
            let key = r.take_u64()?;
            let gen = r.take_u32()?;
            let mut cells = WitBuffer::zeros(bits);
            for offset in (0..bits).step_by(64) {
                let width = 64.min(bits - offset);
                let value = r.take_u64()?;
                if width < 64 && value >= (1u64 << width) {
                    return Err(SnapError::Corrupt("wit chunk overflows the row"));
                }
                cells.set_chunk(offset, width, value);
            }
            self.rows.insert(key, (cells, gen));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wom_code::{Inverted, Rs23Code};

    fn mem() -> FunctionalMemory<Inverted<Rs23Code>> {
        FunctionalMemory::new(Inverted::new(Rs23Code::new()), 32).unwrap()
    }

    #[test]
    fn unwritten_rows_read_none() {
        assert!(mem().read(0).is_none());
        assert_eq!(mem().writes_done(0), 0);
    }

    #[test]
    fn data_round_trips_across_generations() {
        let mut m = mem();
        let patterns: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i.wrapping_mul(37); 32]).collect();
        for (i, p) in patterns.iter().enumerate() {
            m.write(3, p).unwrap();
            assert_eq!(m.read(3).unwrap(), *p, "write #{i}");
        }
    }

    #[test]
    fn budget_matches_the_code() {
        let mut m = mem();
        assert!(m.write(0, &[1u8; 32]).unwrap().kind.is_fast());
        assert!(m.write(0, &[2u8; 32]).unwrap().kind.is_fast());
        let alpha = m.write(0, &[3u8; 32]).unwrap();
        assert_eq!(alpha.kind, WriteKind::Alpha);
        assert_eq!(
            m.writes_done(0),
            1,
            "alpha-write leaves one generation used"
        );
        assert!(m.write(0, &[4u8; 32]).unwrap().kind.is_fast());
    }

    #[test]
    fn in_budget_writes_never_set() {
        let mut m = mem();
        let t1 = m.write(9, &[0xC3u8; 32]).unwrap().transitions;
        let t2 = m.write(9, &[0x3Cu8; 32]).unwrap().transitions;
        assert_eq!(t1.sets, 0);
        assert_eq!(t2.sets, 0);
        assert!(t1.resets > 0, "real data changes real wits");
    }

    #[test]
    fn alpha_write_pays_sets() {
        let mut m = mem();
        m.write(0, &[0xFFu8; 32]).unwrap();
        m.write(0, &[0x00u8; 32]).unwrap();
        let alpha = m.write(0, &[0xA5u8; 32]).unwrap();
        assert!(alpha.transitions.sets > 0, "erase must SET wits back to 1");
        assert_eq!(m.read(0).unwrap(), vec![0xA5u8; 32]);
    }

    #[test]
    fn refresh_erases_and_restores_budget() {
        let mut m = mem();
        m.write(0, &[1u8; 32]).unwrap();
        m.write(0, &[2u8; 32]).unwrap();
        m.refresh(0);
        assert!(m.read(0).is_none());
        assert!(m.write(0, &[3u8; 32]).unwrap().kind.is_fast());
        assert_eq!(m.writes_done(0), 1);
    }

    #[test]
    fn wrong_sized_data_is_rejected() {
        let mut m = mem();
        assert!(m.write(0, &[0u8; 31]).is_err());
        assert!(m.write(0, &[0u8; 33]).is_err());
    }

    #[test]
    fn read_into_matches_read_without_allocating_results() {
        let mut m = mem();
        let mut out = [0u8; 32];
        assert!(!m.read_into(7, &mut out), "unwritten rows report false");
        m.write(7, &[0x42u8; 32]).unwrap();
        assert!(m.read_into(7, &mut out));
        assert_eq!(out.to_vec(), m.read(7).unwrap());
    }

    #[test]
    fn batched_rewrite_re_encodes_staged_lines_at_gen_zero() {
        let mut m = mem();
        // Line 0 exhausted, line 1 mid-budget, line 2 never written.
        m.write(0, &[1u8; 32]).unwrap();
        m.write(0, &[2u8; 32]).unwrap();
        m.write(1, &[3u8; 32]).unwrap();
        m.rewrite_begin();
        m.rewrite_stage(0, &[2u8; 32]);
        m.rewrite_stage(1, &[3u8; 32]);
        m.rewrite_stage(2, &[9u8; 32]);
        m.rewrite_commit().unwrap();
        for (line, val) in [(0u64, 2u8), (1, 3), (2, 9)] {
            assert_eq!(m.read(line).unwrap(), vec![val; 32]);
            assert_eq!(m.writes_done(line), 1, "rewrite resets the budget");
        }
        assert!(m.write(0, &[4u8; 32]).unwrap().kind.is_fast());
    }

    #[test]
    fn rewrite_begin_discards_previously_staged_lines() {
        let mut m = mem();
        m.rewrite_begin();
        m.rewrite_stage(5, &[1u8; 32]);
        m.rewrite_begin(); // restart drops the stale staging
        m.rewrite_commit().unwrap();
        assert!(m.read(5).is_none());
        // Committing an empty burst is a no-op.
        m.rewrite_begin();
        m.rewrite_commit().unwrap();
    }

    #[test]
    fn rows_materialize_lazily() {
        let mut m = mem();
        assert_eq!(m.materialized_rows(), 0);
        m.write(1_000_000_000, &[1u8; 32]).unwrap();
        assert_eq!(m.materialized_rows(), 1);
    }
}
