//! Regenerates Fig. 5 of the paper: normalized average write latency
//! (panel a) and read latency (panel b) of the four PCM architectures
//! across the 20 SPEC CPU2006 / MiBench / SPLASH-2 workloads.
//!
//! Usage: `fig5 [records] [seed] [--json] [--threads N]`
//! (defaults: 120000, 2014, available parallelism).

use wom_pcm_bench::{
    average, fig5, json, reduction_pct, take_threads_flag, DEFAULT_RECORDS, DEFAULT_SEED,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_threads_flag(&mut args);
    let json_out = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let mut args = args.into_iter();
    let records: usize = args.next().map_or(DEFAULT_RECORDS, |s| {
        s.parse().expect("records must be a number")
    });
    let seed: u64 = args
        .next()
        .map_or(DEFAULT_SEED, |s| s.parse().expect("seed must be a number"));

    eprintln!(
        "running fig5: 20 workloads x 4 architectures, {records} records each, {threads} threads ..."
    );
    let rows = fig5(records, seed, threads).expect("figure runs");
    if json_out {
        println!("{}", json::fig5(&rows));
        return;
    }

    let arch_names = ["baseline", "wom-code", "pcm-refresh", "wcpcm"];

    for (panel, writes) in [
        ("Figure 5(a): normalized WRITE latency", true),
        ("Figure 5(b): normalized READ latency", false),
    ] {
        println!("\n{panel}");
        print!("{:16}", "benchmark");
        for a in arch_names {
            print!("{a:>13}");
        }
        println!();
        for row in &rows {
            print!("{:16}", row.benchmark);
            let vals = if writes { &row.write } else { &row.read };
            for v in vals {
                print!("{v:>13.3}");
            }
            println!();
        }
        print!("{:16}", "AVERAGE");
        for i in 0..4 {
            print!("{:>13.3}", average(&rows, i, writes));
        }
        println!();
        println!(
            "paper reports   : wom-code -{:.1}%  pcm-refresh -{:.1}%  wcpcm -{:.1}%",
            if writes { 20.1 } else { 10.2 },
            if writes { 54.9 } else { 47.9 },
            if writes { 47.2 } else { 44.0 },
        );
        println!(
            "this run        : wom-code -{:.1}%  pcm-refresh -{:.1}%  wcpcm -{:.1}%",
            reduction_pct(average(&rows, 1, writes)),
            reduction_pct(average(&rows, 2, writes)),
            reduction_pct(average(&rows, 3, writes)),
        );
    }
}
