//! Compact, deterministic state serialization for snapshot/restore.
//!
//! The `WOMSNAP` container (assembled in the `wom-pcm` crate) carries an
//! opaque payload produced by the little-endian primitives here. The
//! encoding is deliberately boring: fixed-width integers, `f64` via
//! [`f64::to_bits`], and length-prefixed sequences, written in struct
//! declaration order by each type's own `save_state`/`load_state`. Two
//! identical simulation states therefore serialize to identical bytes —
//! the property the resumable-run determinism tests pin.
//!
//! [`SnapWriter`] appends to an owned byte buffer; [`SnapReader`] is a
//! cursor over a borrowed one. Neither touches `std::io`, so decode
//! errors are always typed [`SnapError`]s with an exact byte offset.

use core::fmt;

/// Errors produced while decoding a snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The payload ended before the value at `byte_offset` was complete.
    Truncated {
        /// Offset of the first missing byte.
        byte_offset: u64,
    },
    /// A decoded value is structurally impossible (bad enum tag, a
    /// length that contradicts the container, a non-boolean bool byte).
    /// The string names the field being decoded.
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { byte_offset } => {
                write!(f, "snapshot payload truncated at byte {byte_offset}")
            }
            Self::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
///
/// Bitwise, table-free: snapshot payloads are megabytes at most and are
/// written once per checkpoint interval, so the constant-memory form is
/// plenty — and it keeps this crate free of lookup-table indexing.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
    }
    !crc
}

/// Appends little-endian primitives to an owned byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (sizes are platform-independent in
    /// the container).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` via its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (callers write their own length prefix when the
    /// length is not implied by the schema).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor decoding little-endian primitives from a borrowed payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Current byte offset from the start of the payload.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fails unless every byte was consumed (a longer-than-expected
    /// payload means writer and reader disagree on the schema).
    ///
    /// # Errors
    ///
    /// [`SnapError::Corrupt`] when bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes after the last field"))
        }
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated {
            byte_offset: self.buf.len() as u64,
        })?;
        let bytes = self.buf.get(self.pos..end).ok_or(SnapError::Truncated {
            byte_offset: self.buf.len() as u64,
        })?;
        self.pos = end;
        Ok(bytes)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] at end of payload.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        let bytes = self.take_bytes(1)?;
        bytes.first().copied().ok_or(SnapError::Corrupt("u8"))
    }

    /// Consumes a bool byte, rejecting values other than 0 and 1.
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Corrupt`] for a non-boolean byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte must be 0 or 1")),
        }
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let bytes = self.take_bytes(4)?;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| SnapError::Corrupt("u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let bytes = self.take_bytes(8)?;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SnapError::Corrupt("u64"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Consumes a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 16 bytes remain.
    pub fn take_u128(&mut self) -> Result<u128, SnapError> {
        let bytes = self.take_bytes(16)?;
        let arr: [u8; 16] = bytes.try_into().map_err(|_| SnapError::Corrupt("u128"))?;
        Ok(u128::from_le_bytes(arr))
    }

    /// Consumes a `u64`-encoded size, checked against the remaining
    /// payload so corrupt lengths fail fast instead of driving huge
    /// allocations.
    ///
    /// `min_elem_bytes` is the smallest possible encoding of one element
    /// (1 for byte sequences).
    ///
    /// # Errors
    ///
    /// Truncation, or [`SnapError::Corrupt`] when the declared length
    /// could not possibly fit in the remaining bytes.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let raw = self.take_u64()?;
        let n = usize::try_from(raw).map_err(|_| SnapError::Corrupt("length overflows usize"))?;
        let need = n.checked_mul(min_elem_bytes.max(1));
        match need {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(SnapError::Corrupt("length exceeds remaining payload")),
        }
    }

    /// Consumes an `f64` stored as its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Truncated`] when fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_u128(u128::MAX / 3);
        w.put_f64(-0.125);
        w.put_f64(f64::NAN);
        w.put_usize(4096);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.take_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.take_f64().unwrap(), -0.125);
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_u64().unwrap(), 4096);
        assert_eq!(r.take_bytes(4).unwrap(), b"tail");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_reports_the_offset() {
        let mut w = SnapWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64(), Err(SnapError::Truncated { byte_offset: 4 }));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = SnapReader::new(&[2u8]);
        assert!(matches!(r.take_bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let r = SnapReader::new(&[0u8; 3]);
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn absurd_length_is_rejected_before_allocating() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.take_len(8), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn plausible_length_is_accepted() {
        let mut w = SnapWriter::new();
        w.put_u64(3);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.take_len(1).unwrap(), 3);
        assert_eq!(r.take_bytes(3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Flipping one bit changes the checksum.
        assert_ne!(crc32(b"womsnap"), crc32(b"womsnaq"));
    }
}
