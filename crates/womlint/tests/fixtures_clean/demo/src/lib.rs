//! Clean fixture: nothing for womlint to object to.

/// Adds one to every element, reusing the caller's buffer (hot-tagged
/// in the fixture config, so it must stay allocation-free).
pub fn add_one_into(input: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend(input.iter().map(|x| x + 1));
}
