//! Trace records: one memory access as captured from a workload.

use core::fmt;

/// Direction of a traced memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// A read from main memory (LLC miss fill).
    Read,
    /// A write to main memory (LLC writeback / streaming store).
    Write,
}

impl TraceOp {
    /// True for [`TraceOp::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, Self::Read)
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // DRAMSim2 trace mnemonics.
        match self {
            Self::Read => f.write_str("P_MEM_RD"),
            Self::Write => f.write_str("P_MEM_WR"),
        }
    }
}

/// One memory access: cycle of arrival at the controller, physical byte
/// address, and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Arrival cycle (monotonically non-decreasing within a trace).
    pub cycle: u64,
    /// Physical byte address.
    pub addr: u64,
    /// Read or write.
    pub op: TraceOp,
}

impl TraceRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(cycle: u64, addr: u64, op: TraceOp) -> Self {
        Self { cycle, addr, op }
    }
}

impl fmt::Display for TraceRecord {
    /// DRAMSim2 text format: `0xADDR P_MEM_WR cycle`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x} {} {}", self.addr, self.op, self.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_dramsim2_format() {
        let r = TraceRecord::new(250, 0x7fff_1000, TraceOp::Write);
        assert_eq!(r.to_string(), "0x7fff1000 P_MEM_WR 250");
        let r = TraceRecord::new(0, 0x40, TraceOp::Read);
        assert_eq!(r.to_string(), "0x40 P_MEM_RD 0");
    }

    #[test]
    fn op_predicates() {
        assert!(TraceOp::Read.is_read());
        assert!(!TraceOp::Write.is_read());
    }
}
