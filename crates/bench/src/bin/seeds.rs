//! Seed sensitivity: the synthetic-trace substitution introduces RNG
//! where the paper had fixed captures, so the architecture conclusions
//! must be shown robust to the seed. Runs the Fig. 5 averages over
//! several seeds and reports the spread.
//!
//! Usage: `seeds [records] [n_seeds] [--threads N]`
//! (defaults: 40000, 5, available parallelism).

use wom_pcm_bench::{average, cli, fig5};

const USAGE: &str = "seeds [records] [n_seeds] [--threads N]";

fn main() {
    let mut cli = cli::Parser::from_env(USAGE);
    let threads = cli.threads();
    let records: usize = cli.positional("records", 40_000);
    let n_seeds: u64 = cli.positional("n_seeds", 5);
    cli.finish();

    let mut per_seed: Vec<[f64; 3]> = Vec::new();
    for seed in 0..n_seeds {
        eprintln!("seed {seed} ({records} records x 80 cells, {threads} threads) ...");
        let rows = fig5(records, seed, threads).expect("figure runs");
        per_seed.push([
            average(&rows, 1, true),
            average(&rows, 2, true),
            average(&rows, 3, true),
        ]);
    }

    println!("\nFig. 5(a) averages across {n_seeds} seeds ({records} records/run)\n");
    println!(
        "{:>6}{:>12}{:>14}{:>10}",
        "seed", "wom-code", "pcm-refresh", "wcpcm"
    );
    for (seed, row) in per_seed.iter().enumerate() {
        println!(
            "{:>6}{:>12.3}{:>14.3}{:>10.3}",
            seed, row[0], row[1], row[2]
        );
    }
    for (label, idx) in [("wom-code", 0usize), ("pcm-refresh", 1), ("wcpcm", 2)] {
        let vals: Vec<f64> = per_seed.iter().map(|r| r[idx]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label:>13}: mean {mean:.3}, stddev {:.4}, range [{min:.3}, {max:.3}]",
            var.sqrt()
        );
    }
    println!(
        "\nthe architecture ordering must hold for every seed for the\n\
         reproduction's conclusions to stand."
    );
}
