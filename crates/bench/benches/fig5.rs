//! Criterion wrapper over the Fig. 5 experiment cells: time one
//! (architecture x workload) simulation at reduced scale. Regenerating the
//! actual figure is `cargo run -p wom-pcm-bench --bin fig5 --release`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_trace::synth::benchmarks;
use wom_pcm::Architecture;
use wom_pcm_bench::run_cell;

const RECORDS: usize = 5_000;

fn fig5_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_write");
    group.sample_size(10);
    let profile = benchmarks::by_name("qsort").expect("paper workload");
    for arch in Architecture::all_paper() {
        group.bench_with_input(
            BenchmarkId::from_parameter(arch.label()),
            &arch,
            |b, &arch| b.iter(|| run_cell(arch, &profile, RECORDS, 1, 32).expect("cell runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, fig5_cells);
criterion_main!(benches);
