//! The shared argument parser for the experiment binaries.
//!
//! Every binary in this crate (and `womsim`) speaks the same flag
//! dialect through [`Parser`]: `--threads N`, `--json [PATH]`,
//! `--observe PATH`, `--epoch-cycles N`, plus per-binary flags and
//! positionals. Malformed or unknown arguments all exit with status 2
//! and a one-line `error:` + `usage:` message, so the sixteen binaries
//! no longer hand-roll three different parsing styles.
//!
//! The protocol: construct with the binary's usage line, pull flags and
//! valued options first, then positionals in order, then call
//! [`Parser::finish`] (or let the last [`Parser::positional`] consume
//! the tail) so leftovers are rejected rather than ignored.

use pcm_sim::Cycle;
use std::fmt::Display;
use std::str::FromStr;

/// Default epoch width for `--observe` when `--epoch-cycles` is absent:
/// wide enough to smooth scheduler jitter, narrow enough that a
/// 120k-record figure cell still spans hundreds of epochs.
pub const DEFAULT_EPOCH_CYCLES: Cycle = 50_000;

/// A validated `--observe PATH [--epoch-cycles N]` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveSpec {
    /// Output path for the epoch JSON-Lines.
    pub path: String,
    /// Epoch width in cycles ([`DEFAULT_EPOCH_CYCLES`] unless given).
    pub epoch_cycles: Cycle,
}

/// A validated `--resume PATH [--snapshot-every N]` request: restore
/// from `path` when the file exists, and (with a cadence) rewrite it
/// every `every` records (see `wom_pcm_bench::sharded`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSpec {
    /// Snapshot cadence in trace records; `None` = restore only.
    pub every: Option<u64>,
    /// The snapshot file (both the restore source and the write target).
    pub path: String,
}

impl SnapshotSpec {
    /// Derives a per-case snapshot path for multi-case binaries by
    /// inserting `label` before the file extension (`s.womsnap` +
    /// `qsort` → `s.qsort.womsnap`; no extension appends `.qsort`). An
    /// empty label returns the spec unchanged.
    #[must_use]
    pub fn for_case(&self, label: &str) -> Self {
        if label.is_empty() {
            return self.clone();
        }
        // Split only the file name, so dots in directories are left alone.
        let (dir, name) = match self.path.rsplit_once('/') {
            Some((dir, name)) => (Some(dir), name),
            None => (None, self.path.as_str()),
        };
        let name = match name.rsplit_once('.') {
            Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{label}.{ext}"),
            _ => format!("{name}.{label}"),
        };
        let path = match dir {
            Some(dir) => format!("{dir}/{name}"),
            None => name,
        };
        Self {
            every: self.every,
            path,
        }
    }

    /// Derives shard `index`'s snapshot path ([`Self::for_case`] with a
    /// `shardN` label), so a sharded resumable run keeps one container
    /// per shard.
    #[must_use]
    pub fn for_shard(&self, index: u32) -> Self {
        self.for_case(&format!("shard{index}"))
    }
}

/// Destructive flag/positional extractor over a binary's arguments.
#[derive(Debug)]
pub struct Parser {
    usage: &'static str,
    args: Vec<String>,
}

impl Parser {
    /// Captures the process arguments (program name dropped).
    #[must_use]
    pub fn from_env(usage: &'static str) -> Self {
        Self {
            usage,
            args: std::env::args().skip(1).collect(),
        }
    }

    /// A parser over explicit arguments, for tests.
    #[must_use]
    pub fn from_args(usage: &'static str, args: &[&str]) -> Self {
        Self {
            usage,
            args: args.iter().map(|a| (*a).to_string()).collect(),
        }
    }

    /// Uniform exit-2 error path: `error:` line plus the usage line.
    /// Under `cfg(test)` it panics instead, so the rejection paths are
    /// testable in-process.
    fn fail(&self, msg: &str) -> ! {
        #[cfg(test)]
        {
            panic!("error: {msg} (usage: {})", self.usage);
        }
        #[cfg(not(test))]
        {
            eprintln!("error: {msg}");
            eprintln!("usage: {}", self.usage);
            std::process::exit(2)
        }
    }

    /// Consumes every occurrence of a boolean flag; true if any was seen.
    pub fn flag(&mut self, name: &str) -> bool {
        let before = self.args.len();
        self.args.retain(|a| a != name);
        self.args.len() != before
    }

    /// Consumes one `name VALUE` pair. Repeating a single-value flag
    /// exits 2 — silently taking either occurrence hides a typo'd run
    /// (use [`values`](Self::values) for flags that legitimately repeat).
    pub fn value(&mut self, name: &str) -> Option<String> {
        let pos = self.args.iter().position(|a| a == name)?;
        if pos + 1 >= self.args.len() {
            self.fail(&format!("{name} requires a value"));
        }
        let v = self.args.remove(pos + 1);
        self.args.remove(pos);
        if self.args.iter().any(|a| a == name) {
            self.fail(&format!("duplicate {name}: pass it at most once"));
        }
        Some(v)
    }

    /// Consumes every `name VALUE` pair, keeping all values in order.
    pub fn values(&mut self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(pos) = self.args.iter().position(|a| a == name) {
            if pos + 1 >= self.args.len() {
                self.fail(&format!("{name} requires a value"));
            }
            let v = self.args.remove(pos + 1);
            self.args.remove(pos);
            out.push(v);
        }
        out
    }

    /// [`value`](Self::value), parsed; exits 2 on a malformed value.
    pub fn parsed<T: FromStr>(&mut self, name: &str) -> Option<T>
    where
        T::Err: Display,
    {
        let raw = self.value(name)?;
        match raw.parse::<T>() {
            Ok(v) => Some(v),
            Err(e) => self.fail(&format!("invalid {name} value '{raw}': {e}")),
        }
    }

    /// Consumes `--threads N`, defaulting to available parallelism.
    pub fn threads(&mut self) -> usize {
        match self.parsed::<usize>("--threads") {
            Some(0) => self.fail("--threads wants a positive integer"),
            Some(n) => n,
            None => crate::parallel::default_threads(),
        }
    }

    /// Consumes `--shards N`, defaulting to 1 (unsharded); zero exits 2.
    pub fn shards(&mut self) -> u32 {
        match self.parsed::<u32>("--shards") {
            Some(0) => self.fail("--shards wants a positive integer"),
            Some(n) => n,
            None => 1,
        }
    }

    /// Consumes `--resume PATH` and `--snapshot-every N`.
    /// `--snapshot-every` without `--resume` (or a zero cadence) exits 2
    /// — the resume path names the snapshot file, so a cadence without it
    /// has nowhere to write.
    pub fn snapshot(&mut self) -> Option<SnapshotSpec> {
        let every = self.parsed::<u64>("--snapshot-every");
        let path = self.value("--resume");
        match (path, every) {
            (Some(_), Some(0)) => self.fail("--snapshot-every wants a positive integer"),
            (Some(path), every) => Some(SnapshotSpec { every, path }),
            (None, Some(_)) => self.fail("--snapshot-every requires --resume"),
            (None, None) => None,
        }
    }

    /// Consumes `--observe PATH` and `--epoch-cycles N`. `--epoch-cycles`
    /// without `--observe` (or a zero width) exits 2.
    pub fn observe(&mut self) -> Option<ObserveSpec> {
        let epoch_cycles = self.parsed::<Cycle>("--epoch-cycles");
        let path = self.value("--observe");
        match (path, epoch_cycles) {
            (Some(_), Some(0)) => self.fail("--epoch-cycles wants a positive integer"),
            (Some(path), cycles) => Some(ObserveSpec {
                path,
                epoch_cycles: cycles.unwrap_or(DEFAULT_EPOCH_CYCLES),
            }),
            (None, Some(_)) => self.fail("--epoch-cycles requires --observe"),
            (None, None) => None,
        }
    }

    /// Takes the next raw positional argument, if any. A leftover
    /// `--flag` in that position exits 2 as unknown.
    pub fn next_arg(&mut self) -> Option<String> {
        self.reject_leading_flag();
        if self.args.is_empty() {
            return None;
        }
        Some(self.args.remove(0))
    }

    /// Takes and parses the next positional argument, defaulting when
    /// the arguments are exhausted; exits 2 on a malformed value.
    pub fn positional<T: FromStr>(&mut self, name: &str, default: T) -> T
    where
        T::Err: Display,
    {
        let Some(raw) = self.next_arg() else {
            return default;
        };
        match raw.parse::<T>() {
            Ok(v) => v,
            Err(e) => self.fail(&format!("invalid {name} '{raw}': {e}")),
        }
    }

    /// Ends parsing: anything left over — unknown flag or stray
    /// positional — exits 2.
    pub fn finish(mut self) {
        self.reject_leading_flag();
        if let Some(extra) = self.args.first() {
            self.fail(&format!("unexpected argument '{extra}'"));
        }
    }

    fn reject_leading_flag(&mut self) {
        let unknown = match self.args.first() {
            Some(a) if a.starts_with("--") => a.clone(),
            _ => return,
        };
        self.fail(&format!("unknown flag '{unknown}'"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_and_values_are_extracted_in_any_order() {
        let mut p = Parser::from_args("t", &["10", "--json", "--threads", "3", "20"]);
        assert_eq!(p.threads(), 3);
        assert!(p.flag("--json"));
        assert!(!p.flag("--json"), "flag was consumed");
        assert_eq!(p.positional::<usize>("records", 1), 10);
        assert_eq!(p.positional::<u64>("seed", 7), 20);
        assert_eq!(p.positional::<u64>("extra", 7), 7, "default on exhaustion");
        p.finish();
    }

    #[test]
    fn values_collects_every_occurrence_in_order() {
        let mut p = Parser::from_args("t", &["--workload", "a", "7", "--workload", "b"]);
        assert_eq!(p.values("--workload"), vec!["a".to_string(), "b".into()]);
        assert!(p.values("--workload").is_empty(), "values were consumed");
        assert_eq!(p.positional::<u64>("records", 0), 7);
        p.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate --threads")]
    fn repeated_single_value_flags_are_rejected() {
        let mut p = Parser::from_args("t", &["--threads", "2", "--threads", "5"]);
        p.threads();
    }

    #[test]
    #[should_panic(expected = "--threads requires a value")]
    fn trailing_value_flag_without_value_is_rejected() {
        let mut p = Parser::from_args("t", &["--threads"]);
        p.threads();
    }

    #[test]
    fn observe_defaults_the_epoch_width() {
        let mut p = Parser::from_args("t", &["--observe", "out.jsonl"]);
        assert_eq!(
            p.observe(),
            Some(ObserveSpec {
                path: "out.jsonl".into(),
                epoch_cycles: DEFAULT_EPOCH_CYCLES,
            })
        );
        let mut p = Parser::from_args("t", &["--observe", "o.jsonl", "--epoch-cycles", "1000"]);
        assert_eq!(p.observe().map(|o| o.epoch_cycles), Some(1000));
        let mut p = Parser::from_args("t", &[]);
        assert_eq!(p.observe(), None);
    }

    #[test]
    fn shards_defaults_to_one() {
        let mut p = Parser::from_args("t", &[]);
        assert_eq!(p.shards(), 1);
        let mut p = Parser::from_args("t", &["--shards", "8"]);
        assert_eq!(p.shards(), 8);
        p.finish();
    }

    #[test]
    fn snapshot_pairs_resume_with_optional_cadence() {
        let mut p = Parser::from_args("t", &["--resume", "s.womsnap"]);
        assert_eq!(
            p.snapshot(),
            Some(SnapshotSpec {
                every: None,
                path: "s.womsnap".into(),
            })
        );
        let mut p = Parser::from_args("t", &["--resume", "s.womsnap", "--snapshot-every", "500"]);
        assert_eq!(p.snapshot().and_then(|s| s.every), Some(500));
        let mut p = Parser::from_args("t", &[]);
        assert_eq!(p.snapshot(), None);
    }

    #[test]
    fn snapshot_paths_derive_per_case_and_per_shard() {
        let spec = SnapshotSpec {
            every: Some(100),
            path: "out/run.womsnap".into(),
        };
        assert_eq!(spec.for_case("qsort").path, "out/run.qsort.womsnap");
        assert_eq!(spec.for_case("").path, "out/run.womsnap");
        assert_eq!(spec.for_shard(3).path, "out/run.shard3.womsnap");
        let bare = SnapshotSpec {
            every: None,
            path: "snap".into(),
        };
        assert_eq!(bare.for_case("a").path, "snap.a");
    }

    #[test]
    fn next_arg_pops_in_order() {
        let mut p = Parser::from_args("t", &["run", "wcpcm"]);
        assert_eq!(p.next_arg().as_deref(), Some("run"));
        assert_eq!(p.next_arg().as_deref(), Some("wcpcm"));
        assert_eq!(p.next_arg(), None);
    }
}
