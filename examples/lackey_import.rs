//! Importing a real-tool memory capture: Valgrind's `lackey` plays the
//! role of the paper's (unavailable) Pin instrumentation.
//!
//! Capture a program's accesses with
//!
//! ```console
//! valgrind --tool=lackey --trace-mem=yes ./your_program 2> program.lackey
//! ```
//!
//! and feed the file to [`read_lackey`]. This example uses an embedded
//! snippet of lackey output so it runs standalone:
//! `cargo run --release --example lackey_import`.
//!
//! [`read_lackey`]: womcode_pcm::trace::lackey::read_lackey

use womcode_pcm::arch::{Architecture, SystemBuilder};
use womcode_pcm::trace::lackey::read_lackey;
use womcode_pcm::trace::TraceStats;

/// A fragment of real-shaped lackey output: loads, stores, modifies, and
/// the instruction fetches / banners the importer skips.
const CAPTURE: &str = "\
==4242== Lackey, an example Valgrind tool
==4242== Command: ./demo
I  0400aa10,3
 L 0402l000,8
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a slightly larger synthetic capture: a tight update loop over
    // a small array (loads + modifies), the shape lackey emits for e.g.
    // an in-place histogram.
    let mut capture = String::from("==4242== Lackey, an example Valgrind tool\n");
    for i in 0..6_000u64 {
        let slot = 0x0402_0000 + (i % 256) * 8;
        capture.push_str(&format!("I  0400aa{:02x},3\n", i % 64));
        capture.push_str(&format!(" L {:08x},8\n", 0x0403_0000 + (i % 512) * 8));
        capture.push_str(&format!(" M {slot:08x},8\n"));
    }

    let records = read_lackey(capture.as_bytes(), /* gap cycles */ 25)?;
    let stats = TraceStats::from_records(records.iter().copied(), 1024);
    println!(
        "imported {} accesses ({} reads / {} writes), {} rows, {:.0}% of writes are rewrites",
        stats.accesses,
        stats.reads,
        stats.writes,
        stats.unique_rows,
        stats.rewrite_fraction() * 100.0
    );

    for arch in [Architecture::Baseline, Architecture::WomCodeRefresh] {
        let mut session = SystemBuilder::new(arch).rows_per_bank(4096).open()?;
        session.feed(&records)?;
        let m = session.finish()?;
        println!(
            "{:22} mean write {:6.1} ns, mean read {:5.1} ns, {:.0}% fast writes",
            arch.label(),
            m.mean_write_ns(),
            m.mean_read_ns(),
            m.fast_write_fraction() * 100.0
        );
    }

    // And show that malformed captures fail loudly, not silently.
    assert!(
        read_lackey(CAPTURE.as_bytes(), 25).is_err(),
        "bad hex must be rejected"
    );
    println!("\nmalformed capture rejected with a parse error, as expected");
    Ok(())
}
