//! `hotpath/alloc`, `hotpath/transitive`, and `hotpath/dynamic-call`:
//! the allocation ban over tagged hot regions, extended to everything
//! reachable from them through the call graph.
//!
//! `womlint.toml` regions name *root entry points* only (e.g.
//! `Engine::advance`, `next_chunk`); the closure pulls in every
//! same-workspace function reachable from a root, so a helper extracted
//! out of a hot function cannot escape the lint. Calls the graph cannot
//! follow (`(self.cb)(...)`) are reported once per site with the
//! allow-able `hotpath/dynamic-call` rule instead of being silently
//! ignored.

use crate::callgraph::{closure, FnRef, StopEntry, Workspace};
use crate::config::Config;
use crate::parse::CallKind;
use crate::scan;
use crate::{push, Diagnostic, Report};
use crate::{RULE_HOTPATH_ALLOC, RULE_HOTPATH_DYNAMIC, RULE_HOTPATH_TRANSITIVE};
use std::collections::BTreeSet;

/// Runs all three hot-path rules over the workspace.
pub fn check(cfg: &Config, ws: &Workspace, report: &mut Report) {
    // Roots: every fn named by a region (all fns of the file for a
    // region with an empty function list).
    let mut roots: Vec<FnRef> = Vec::new();
    let mut whole_files: BTreeSet<usize> = BTreeSet::new();
    for region in &cfg.hot_regions {
        // Missing files/functions are `config/stale-region` territory.
        let Some(fi) = ws.file_index(&region.file) else {
            continue;
        };
        let Some(unit) = ws.files.get(fi) else {
            continue;
        };
        if region.functions.is_empty() {
            whole_files.insert(fi);
        }
        for (gi, f) in unit.items.fns.iter().enumerate() {
            if region.functions.is_empty() || region.functions.iter().any(|n| n == &f.name) {
                roots.push(FnRef { file: fi, func: gi });
            }
        }
    }
    roots.sort();
    roots.dedup();

    // Direct rule. Whole-file regions scan the full token stream (this
    // also covers code outside fn bodies); named regions scan each root
    // body.
    for &fi in &whole_files {
        if let Some(unit) = ws.files.get(fi) {
            direct_hits(cfg, report, unit, 0, unit.scan.tokens.len());
        }
    }
    for &r in &roots {
        if whole_files.contains(&r.file) {
            continue; // already covered by the whole-file span
        }
        let (Some(unit), Some(f)) = (ws.file(r), ws.func(r)) else {
            continue;
        };
        direct_hits(cfg, report, unit, f.body_start, f.body_end);
    }

    // Closure. Calls already banned outright by bare name (`clone`,
    // `collect`, ...) are not followed — the call site itself is the
    // diagnostic; following into a `Clone` impl body would only
    // duplicate it.
    let stops: Vec<StopEntry> = cfg
        .hot_stops
        .iter()
        .map(|s| StopEntry {
            file: s.file.clone(),
            function: s.function.clone(),
        })
        .collect();
    let skip: BTreeSet<String> = cfg
        .hot_banned_calls
        .iter()
        .filter(|c| !c.contains("::") && !c.ends_with('!'))
        .cloned()
        .collect();
    let cls = closure(ws, &roots, &stops, &skip);
    let root_set: BTreeSet<FnRef> = roots.iter().copied().collect();

    for &fref in cls.reached.keys() {
        let (Some(unit), Some(f)) = (ws.file(fref), ws.func(fref)) else {
            continue;
        };
        let chain = cls.chain(ws, fref).join(" -> ");
        if !root_set.contains(&fref) {
            for hit in scan::find_calls(
                &unit.scan.tokens,
                f.body_start,
                f.body_end,
                &cfg.hot_banned_calls,
            ) {
                push(
                    report,
                    &unit.scan,
                    Diagnostic {
                        rule: RULE_HOTPATH_TRANSITIVE.into(),
                        file: unit.path.clone(),
                        line: hit.line,
                        message: format!(
                            "`{}` in `{}`, which is reachable from a hot region \
                             root ({chain}): the whole closure must stay \
                             allocation-free — reuse scratch buffers, cut the \
                             false edge with [[hotpath.stop]], or justify with a \
                             womlint::allow",
                            hit.pattern, f.name
                        ),
                    },
                );
            }
        }
        for call in &f.calls {
            if call.kind == CallKind::Dynamic {
                push(
                    report,
                    &unit.scan,
                    Diagnostic {
                        rule: RULE_HOTPATH_DYNAMIC.into(),
                        file: unit.path.clone(),
                        line: call.line,
                        message: format!(
                            "call through a non-path expression in the hot closure \
                             ({chain}): the call graph cannot follow it — justify \
                             with womlint::allow(hotpath/dynamic-call, reason = \
                             \"...\") if every possible callee is allocation-free",
                        ),
                    },
                );
            }
        }
    }
}

fn direct_hits(
    cfg: &Config,
    report: &mut Report,
    unit: &crate::callgraph::FileUnit,
    start: usize,
    end: usize,
) {
    for hit in scan::find_calls(&unit.scan.tokens, start, end, &cfg.hot_banned_calls) {
        push(
            report,
            &unit.scan,
            Diagnostic {
                rule: RULE_HOTPATH_ALLOC.into(),
                file: unit.path.clone(),
                line: hit.line,
                message: format!(
                    "`{}` in a hot region: the engine tick / codec row path \
                     must stay allocation-free — reuse scratch buffers \
                     (`read_into`, `encode_row_into`, `RowScratch`), or \
                     justify with a womlint::allow",
                    hit.pattern
                ),
            },
        );
    }
}
