//! Epoch time-series exporters: JSON-Lines and CSV.
//!
//! Both exporters emit the same counter columns in the same order (one
//! epoch per line/row), so downstream tooling can switch formats freely.
//! JSON-Lines additionally carries the sparse latency-histogram
//! snapshots; CSV (being flat) carries only the percentile summaries.
//!
//! Numbers are integers throughout — cycle counts and event counts — so
//! the output is bit-stable across platforms.

use super::epoch::{EpochCounters, EpochSeries};
use pcm_sim::Histogram;
use std::io::{self, Write};

/// The scalar counter columns, in canonical order.
const COUNTER_NAMES: [&str; 22] = [
    "reads_issued",
    "writes_issued",
    "reads_completed",
    "writes_completed",
    "read_cycles",
    "write_cycles",
    "fast_writes",
    "slow_writes",
    "coalesced_writes",
    "refresh_bursts",
    "refresh_rows_planned",
    "refreshes_completed",
    "refreshes_preempted",
    "cache_read_hits",
    "cache_read_misses",
    "cache_write_hits",
    "cache_write_misses",
    "victim_writebacks",
    "gap_moves",
    "budgets_exhausted",
    "hidden_page_accesses",
    "read_p50_cycles", // percentile summaries ride at the end
];

fn counter_values(c: &EpochCounters) -> [u128; 22] {
    [
        u128::from(c.reads_issued),
        u128::from(c.writes_issued),
        u128::from(c.reads_completed),
        u128::from(c.writes_completed),
        c.read_cycles,
        c.write_cycles,
        u128::from(c.fast_writes),
        u128::from(c.slow_writes),
        u128::from(c.coalesced_writes),
        u128::from(c.refresh_bursts),
        u128::from(c.refresh_rows_planned),
        u128::from(c.refreshes_completed),
        u128::from(c.refreshes_preempted),
        u128::from(c.cache_read_hits),
        u128::from(c.cache_read_misses),
        u128::from(c.cache_write_hits),
        u128::from(c.cache_write_misses),
        u128::from(c.victim_writebacks),
        u128::from(c.gap_moves),
        u128::from(c.budgets_exhausted),
        u128::from(c.hidden_page_accesses),
        u128::from(c.read_hist.percentile(0.5)),
    ]
}

/// JSON string escaping for tag values (tag names must already be plain
/// identifiers).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_sparse_hist(out: &mut String, h: &Histogram) {
    out.push('[');
    let mut first = true;
    for (i, n) in h.nonzero_buckets() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{},{n}]", Histogram::bucket_upper_bound(i)));
    }
    out.push(']');
}

/// Appends one epoch's JSON-Lines object to `line` (no trailing
/// newline): the given `tags` first, then the epoch window, the counter
/// columns, tail percentiles, and sparse histogram snapshots — the
/// exact line [`write_jsonl`] emits for the same epoch. Public so
/// incremental exporters (the `womd` service streams epoch deltas over
/// the wire as they complete) produce lines byte-identical to a
/// whole-series export.
pub fn push_epoch_jsonl(
    line: &mut String,
    tags: &[(&str, &str)],
    index: usize,
    start_cycle: u64,
    end_cycle: u64,
    c: &EpochCounters,
) {
    line.push('{');
    for &(name, value) in tags {
        line.push_str(&format!("\"{name}\":"));
        push_json_str(line, value);
        line.push(',');
    }
    line.push_str(&format!(
        "\"epoch\":{index},\"start_cycle\":{start_cycle},\"end_cycle\":{end_cycle}"
    ));
    for (name, value) in COUNTER_NAMES.iter().zip(counter_values(c)) {
        line.push_str(&format!(",\"{name}\":{value}"));
    }
    line.push_str(&format!(
        ",\"read_p99_cycles\":{},\"write_p50_cycles\":{},\"write_p99_cycles\":{}",
        c.read_hist.percentile(0.99),
        c.write_hist.percentile(0.5),
        c.write_hist.percentile(0.99)
    ));
    line.push_str(",\"read_hist\":");
    push_sparse_hist(line, &c.read_hist);
    line.push_str(",\"write_hist\":");
    push_sparse_hist(line, &c.write_hist);
    line.push('}');
}

/// Writes the series as JSON-Lines: one object per epoch, the given
/// `tags` (constant per line) first, then the epoch window, the counter
/// columns, tail percentiles, and sparse `[upper_bound_cycles, count]`
/// histogram snapshots.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(
    w: &mut W,
    series: &EpochSeries,
    tags: &[(&str, &str)],
) -> io::Result<()> {
    let mut line = String::new();
    for (i, c) in series.epochs().iter().enumerate() {
        line.clear();
        push_epoch_jsonl(
            &mut line,
            tags,
            i,
            series.epoch_start(i),
            series.epoch_end(i),
            c,
        );
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes the series as CSV with a header row: the given `tags` become
/// leading constant columns, followed by the same counter columns as the
/// JSON-Lines exporter plus the percentile summaries (histogram
/// snapshots are JSONL-only). Tag values containing commas or quotes are
/// quoted per RFC 4180.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(
    w: &mut W,
    series: &EpochSeries,
    tags: &[(&str, &str)],
) -> io::Result<()> {
    let mut header = String::new();
    for &(name, _) in tags {
        header.push_str(&format!("{name},"));
    }
    header.push_str("epoch,start_cycle,end_cycle");
    for name in COUNTER_NAMES {
        header.push_str(&format!(",{name}"));
    }
    header.push_str(",read_p99_cycles,write_p50_cycles,write_p99_cycles");
    writeln!(w, "{header}")?;

    let mut line = String::new();
    for (i, c) in series.epochs().iter().enumerate() {
        line.clear();
        for &(_, value) in tags {
            push_csv_field(&mut line, value);
            line.push(',');
        }
        line.push_str(&format!(
            "{i},{},{}",
            series.epoch_start(i),
            series.epoch_end(i)
        ));
        for value in counter_values(c) {
            line.push_str(&format!(",{value}"));
        }
        line.push_str(&format!(
            ",{},{},{}",
            c.read_hist.percentile(0.99),
            c.write_hist.percentile(0.5),
            c.write_hist.percentile(0.99)
        ));
        writeln!(w, "{line}")?;
    }
    Ok(())
}

fn push_csv_field(out: &mut String, value: &str) {
    if value.contains([',', '"', '\n']) {
        out.push('"');
        out.push_str(&value.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(value);
    }
}

#[cfg(test)]
mod tests {
    use super::super::epoch::EpochRecorder;
    use super::super::event::{Event, WriteClass};
    use super::*;

    fn sample_series() -> EpochSeries {
        let mut r = EpochRecorder::new(100);
        r.on_event(&Event::ReadCompleted {
            cycle: 10,
            latency: 22,
        });
        r.on_event(&Event::WriteCompleted {
            cycle: 150,
            latency: 120,
            class: WriteClass::Slow,
        });
        r.on_finish(180);
        r.into_series()
    }

    #[test]
    fn jsonl_emits_one_line_per_epoch_with_tags_first() {
        let mut out = Vec::new();
        write_jsonl(&mut out, &sample_series(), &[("arch", "wcpcm")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"arch\":\"wcpcm\",\"epoch\":0,"));
        assert!(lines[0].contains("\"reads_completed\":1"));
        assert!(lines[0].contains("\"read_hist\":[[31,1]]"));
        assert!(lines[1].contains("\"start_cycle\":100,\"end_cycle\":180"));
        assert!(lines[1].contains("\"slow_writes\":1"));
        assert!(lines[1].contains("\"write_hist\":[[127,1]]"));
    }

    #[test]
    fn jsonl_escapes_tag_values() {
        let mut out = Vec::new();
        write_jsonl(&mut out, &sample_series(), &[("label", "a\"b\\c\n")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"label\":\"a\\\"b\\\\c\\n\""));
    }

    #[test]
    fn csv_header_matches_jsonl_keys() {
        let series = sample_series();
        let mut csv = Vec::new();
        write_csv(&mut csv, &series, &[("arch", "wcpcm")]).unwrap();
        let csv = String::from_utf8(csv).unwrap();
        let header = csv.lines().next().unwrap();
        assert_eq!(csv.lines().count(), 3); // header + 2 epochs

        let mut jsonl = Vec::new();
        write_jsonl(&mut jsonl, &series, &[("arch", "wcpcm")]).unwrap();
        let jsonl = String::from_utf8(jsonl).unwrap();
        let first = jsonl.lines().next().unwrap();
        // Every CSV column appears as a JSONL key (histograms are extra,
        // JSONL-only payload).
        for column in header.split(',') {
            assert!(
                first.contains(&format!("\"{column}\":")),
                "CSV column {column} missing from JSONL"
            );
        }
    }

    #[test]
    fn csv_quotes_awkward_tag_values() {
        let mut out = Vec::new();
        write_csv(&mut out, &sample_series(), &[("label", "a,b\"c")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"a,b\"\"c\""));
    }
}
