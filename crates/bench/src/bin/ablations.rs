//! Ablation studies over the design choices called out in `DESIGN.md` §14:
//!
//! * `rth`      — PCM-refresh threshold r_th sweep (0–100%).
//! * `rat`      — row-address-table depth sweep (the paper fixes 5).
//! * `pausing`  — write pausing on/off during PCM-refresh.
//! * `budget`   — row- vs column-granular WOM budget tracking.
//! * `sched`    — controller scheduling policy (FR-FCFS / strict FCFS /
//!   read-always-first).
//! * `period`   — PCM-refresh period sweep (paper fixes 4000 ns).
//! * `cold`     — cold-cell assumption (erased / steady-state / dirty).
//! * `org`      — wide-column vs hidden-page capacity accounting.
//!
//! Usage: `ablations [study] [records] [seed] [--threads N]`;
//! with no study, runs all. Each study's cells run in parallel.

use pcm_sim::MemoryGeometry;
use pcm_trace::stream::TraceSpec;
use pcm_trace::synth::benchmarks;
use wom_pcm::{
    Architecture, BudgetGranularity, ColdPolicy, HiddenPageTable, RunMetrics, SystemBuilder,
    SystemConfig, WideColumn,
};
use wom_pcm_bench::{cli, run_configs_parallel};

const DEFAULT_RECORDS: usize = 30_000;
const WORKLOAD: &str = "FFT.mi";

/// Runs one study's config variants as a parallel batch, in input order.
fn run_all(cfgs: Vec<SystemConfig>, records: usize, seed: u64, threads: usize) -> Vec<RunMetrics> {
    let profile = benchmarks::by_name(WORKLOAD).expect("bundled workload");
    let spec = TraceSpec::synth(profile, seed, records as u64);
    let jobs: Vec<_> = cfgs.into_iter().map(|cfg| (cfg, spec.clone())).collect();
    run_configs_parallel(&jobs, threads).expect("ablation cells run")
}

fn base(arch: Architecture) -> SystemBuilder {
    // Bound lazily-allocated simulator state for ablation-scale runs.
    SystemBuilder::new(arch).rows_per_bank(4096)
}

fn ablate_rth(records: usize, seed: u64, threads: usize) {
    println!("\n== refresh threshold r_th (WOM-code PCM + refresh, {WORKLOAD}) ==");
    println!(
        "{:>8}{:>16}{:>13}{:>12}{:>12}",
        "r_th %", "mean write ns", "fast writes", "refreshes", "preempted"
    );
    const PCTS: [u8; 5] = [0, 25, 50, 75, 100];
    let cfgs = PCTS
        .iter()
        .map(|&pct| {
            base(Architecture::WomCodeRefresh)
                .refresh_threshold_pct(pct)
                .into_config()
        })
        .collect();
    for (pct, m) in PCTS.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>8}{:>16.1}{:>12.1}%{:>12}{:>12}",
            pct,
            m.mean_write_ns(),
            m.fast_write_fraction() * 100.0,
            m.refreshes_completed,
            m.refreshes_preempted
        );
    }
}

fn ablate_rat(records: usize, seed: u64, threads: usize) {
    println!("\n== row-address-table depth (paper fixes 5) ==");
    println!(
        "{:>8}{:>16}{:>13}{:>12}",
        "depth", "mean write ns", "fast writes", "refreshes"
    );
    const DEPTHS: [usize; 6] = [1, 2, 5, 10, 20, 50];
    let cfgs = DEPTHS
        .iter()
        .map(|&depth| {
            base(Architecture::WomCodeRefresh)
                .refresh_table_depth(depth)
                .into_config()
        })
        .collect();
    for (depth, m) in DEPTHS.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>8}{:>16.1}{:>12.1}%{:>12}",
            depth,
            m.mean_write_ns(),
            m.fast_write_fraction() * 100.0,
            m.refreshes_completed
        );
    }
}

fn ablate_pausing(records: usize, seed: u64, threads: usize) {
    println!("\n== write pausing during PCM-refresh ==");
    println!(
        "{:>10}{:>16}{:>15}{:>12}{:>12}",
        "pausing", "mean write ns", "mean read ns", "refreshes", "preempted"
    );
    const PAUSING: [bool; 2] = [true, false];
    let cfgs = PAUSING
        .iter()
        .map(|&pausing| {
            base(Architecture::WomCodeRefresh)
                .write_pausing(pausing)
                .into_config()
        })
        .collect();
    for (pausing, m) in PAUSING.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>10}{:>16.1}{:>15.1}{:>12}{:>12}",
            if *pausing { "on" } else { "off" },
            m.mean_write_ns(),
            m.mean_read_ns(),
            m.refreshes_completed,
            m.refreshes_preempted
        );
    }
}

fn ablate_sched(records: usize, seed: u64, threads: usize) {
    use pcm_sim::SchedulerPolicy;
    println!("\n== controller scheduling policy (WOM-code PCM + refresh) ==");
    println!(
        "{:>18}{:>16}{:>15}{:>13}",
        "policy", "mean write ns", "mean read ns", "fast writes"
    );
    const POLICIES: [(&str, SchedulerPolicy); 3] = [
        ("fr-fcfs", SchedulerPolicy::FrFcfs),
        ("strict fcfs", SchedulerPolicy::StrictFcfs),
        ("read-first", SchedulerPolicy::ReadAlwaysFirst),
    ];
    let cfgs = POLICIES
        .iter()
        .map(|&(_, policy)| {
            base(Architecture::WomCodeRefresh)
                .scheduler(policy)
                .into_config()
        })
        .collect();
    for ((name, _), m) in POLICIES.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>18}{:>16.1}{:>15.1}{:>12.1}%",
            name,
            m.mean_write_ns(),
            m.mean_read_ns(),
            m.fast_write_fraction() * 100.0
        );
    }
}

fn ablate_period(records: usize, seed: u64, threads: usize) {
    println!("\n== PCM-refresh period (paper fixes 4000 ns) ==");
    println!(
        "{:>12}{:>16}{:>13}{:>12}{:>12}",
        "period ns", "mean write ns", "fast writes", "refreshes", "preempted"
    );
    const PERIODS: [u64; 5] = [1000, 2000, 4000, 8000, 16000];
    let cfgs = PERIODS
        .iter()
        .map(|&period| {
            let b = base(Architecture::WomCodeRefresh);
            let mut timing = b.config().mem().timing;
            timing.refresh_period_ns = period;
            b.timing(timing).into_config()
        })
        .collect();
    for (period, m) in PERIODS.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>12}{:>16.1}{:>12.1}%{:>12}{:>12}",
            period,
            m.mean_write_ns(),
            m.fast_write_fraction() * 100.0,
            m.refreshes_completed,
            m.refreshes_preempted
        );
    }
}

fn ablate_budget(records: usize, seed: u64, threads: usize) {
    println!("\n== WOM budget granularity (WOM-code PCM) ==");
    println!(
        "{:>10}{:>16}{:>13}",
        "budget", "mean write ns", "fast writes"
    );
    const GRANULARITIES: [(&str, BudgetGranularity); 2] = [
        ("column", BudgetGranularity::Column),
        ("row", BudgetGranularity::Row),
    ];
    let cfgs = GRANULARITIES
        .iter()
        .map(|&(_, g)| {
            base(Architecture::WomCode)
                .budget_granularity(g)
                .into_config()
        })
        .collect();
    for ((name, _), m) in GRANULARITIES
        .iter()
        .zip(run_all(cfgs, records, seed, threads))
    {
        println!(
            "{:>10}{:>16.1}{:>12.1}%",
            name,
            m.mean_write_ns(),
            m.fast_write_fraction() * 100.0
        );
    }
}

fn ablate_cold(records: usize, seed: u64, threads: usize) {
    println!("\n== cold-cell assumption (WOM-code PCM) ==");
    println!(
        "{:>14}{:>16}{:>13}",
        "cold policy", "mean write ns", "fast writes"
    );
    const COLD: [(&str, ColdPolicy); 3] = [
        ("erased", ColdPolicy::Erased),
        ("steady-state", ColdPolicy::SteadyState),
        ("dirty", ColdPolicy::Dirty),
    ];
    let cfgs = COLD
        .iter()
        .map(|&(_, c)| base(Architecture::WomCode).cold_policy(c).into_config())
        .collect();
    for ((name, _), m) in COLD.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>14}{:>16.1}{:>12.1}%",
            name,
            m.mean_write_ns(),
            m.fast_write_fraction() * 100.0
        );
    }
}

fn ablate_org_timing(records: usize, seed: u64, threads: usize) {
    use wom_pcm::Organization;
    println!("\n== hidden-page companion-traffic charge (WOM-code PCM) ==");
    println!(
        "{:>28}{:>16}{:>15}{:>20}",
        "organization", "mean write ns", "mean read ns", "companion accesses"
    );
    const ORGS: [(&str, Organization, bool); 3] = [
        ("wide-column", Organization::WideColumn, false),
        ("hidden-page (uncharged)", Organization::HiddenPage, false),
        ("hidden-page (charged)", Organization::HiddenPage, true),
    ];
    let cfgs = ORGS
        .iter()
        .map(|&(_, org, charge)| {
            base(Architecture::WomCode)
                .organization(org)
                .charge_hidden_page_traffic(charge)
                .into_config()
        })
        .collect();
    for ((name, _, _), m) in ORGS.iter().zip(run_all(cfgs, records, seed, threads)) {
        println!(
            "{:>28}{:>16.1}{:>15.1}{:>20}",
            name,
            m.mean_write_ns(),
            m.mean_read_ns(),
            m.hidden_page_accesses
        );
    }
    println!(
        "the paper treats both organizations as timing-identical; charging the\n\
         companion row access quantifies what that assumption is worth."
    );
}

fn ablate_org() {
    println!("\n== memory organization capacity accounting (no timing difference) ==");
    let geometry = MemoryGeometry::paper_16gib();
    let wide = WideColumn::new(geometry, 1.5).expect("valid expansion");
    let hidden = HiddenPageTable::new(geometry, 1.5).expect("valid expansion");
    println!(
        "wide-column : columns widened to 1.5Z; visible capacity {} GiB; cell overhead {:.0}%",
        wide.visible_capacity_bytes() >> 30,
        wide.cell_overhead() * 100.0
    );
    println!(
        "hidden-page : {} visible + {} hidden rows/bank; visible capacity {} GiB",
        hidden.visible_rows(),
        hidden.hidden_rows(),
        hidden.visible_capacity_bytes() >> 30
    );
    println!(
        "tradeoff    : wide-column fixes the code at manufacture; hidden-page\n\
         \u{20}             supports any code with expansion <= 1.5 at runtime"
    );
}

const USAGE: &str =
    "ablations [rth|rat|pausing|budget|sched|period|cold|org|all] [records] [seed] [--threads N]";

fn main() {
    let mut cli = cli::Parser::from_env(USAGE);
    let threads = cli.threads();
    let study = cli.next_arg().unwrap_or_else(|| "all".into());
    let records: usize = cli.positional("records", DEFAULT_RECORDS);
    let seed: u64 = cli.positional("seed", 2014);
    cli.finish();

    match study.as_str() {
        "rth" => ablate_rth(records, seed, threads),
        "rat" => ablate_rat(records, seed, threads),
        "pausing" => ablate_pausing(records, seed, threads),
        "budget" => ablate_budget(records, seed, threads),
        "sched" => ablate_sched(records, seed, threads),
        "period" => ablate_period(records, seed, threads),
        "cold" => ablate_cold(records, seed, threads),
        "org" => {
            ablate_org();
            ablate_org_timing(records, seed, threads);
        }
        "all" => {
            ablate_rth(records, seed, threads);
            ablate_rat(records, seed, threads);
            ablate_pausing(records, seed, threads);
            ablate_budget(records, seed, threads);
            ablate_sched(records, seed, threads);
            ablate_period(records, seed, threads);
            ablate_cold(records, seed, threads);
            ablate_org();
            ablate_org_timing(records, seed, threads);
        }
        other => {
            eprintln!(
                "unknown study {other:?}; use rth|rat|pausing|budget|sched|period|cold|org|all"
            );
            std::process::exit(2);
        }
    }
}
