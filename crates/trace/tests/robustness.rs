//! Robustness: the trace parsers must never panic, whatever bytes they
//! are fed, and must reject garbage with useful errors.

use pcm_trace::binary::read_binary;
use pcm_trace::format::{parse_line, TraceReader};
use proptest::prelude::*;

proptest! {
    /// Arbitrary text lines never panic the line parser.
    #[test]
    fn parse_line_never_panics(line in ".{0,200}") {
        let _ = parse_line(&line);
    }

    /// Arbitrary byte streams never panic the text reader.
    #[test]
    fn text_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for result in TraceReader::new(bytes.as_slice()) {
            let _ = result;
        }
    }

    /// Arbitrary byte streams never panic the binary reader.
    #[test]
    fn binary_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_binary(bytes.as_slice());
    }

    /// Every record the text parser accepts round-trips exactly.
    #[test]
    fn accepted_lines_round_trip(cycle in any::<u64>(), addr in any::<u64>(), is_read in any::<bool>()) {
        use pcm_trace::{TraceOp, TraceRecord};
        let r = TraceRecord::new(cycle, addr, if is_read { TraceOp::Read } else { TraceOp::Write });
        let parsed = parse_line(&r.to_string()).unwrap().unwrap();
        prop_assert_eq!(parsed, r);
    }
}
