//! Sharded and resumable experiment runners.
//!
//! [`run_spec`] is the one entry point behind the `--shards`,
//! `--snapshot-every`, and `--resume` flags: it runs a `(config, trace
//! spec)` job either whole or as an N-way rank-sharded decomposition
//! ([`wom_pcm::ShardPlan`]), periodically writing `WOMSNAP` snapshot
//! containers and resuming from one when present. Shards are dispatched
//! on [`crate::parallel::map`], and the merged metrics are reduced in
//! fixed shard order — so the same decomposition is `{:#?}`-byte
//! identical at any thread count (pinned by the `shard_determinism`
//! test; see `DESIGN.md` §12).
//!
//! Resume semantics: a snapshot file records how many trace records the
//! interrupted run had consumed; [`run_spec`] restores the engine,
//! re-opens the spec, skips exactly that many records (chunk by chunk,
//! submitting only the tail of the boundary chunk), and continues — the
//! finished metrics are byte-identical to the uninterrupted run. A
//! missing snapshot file simply starts from the beginning, so the same
//! command line works for the first run and every restart.

use crate::cli::SnapshotSpec;
use crate::parallel;
use pcm_sim::Cycle;
use pcm_trace::stream::{TraceSource, TraceSpec};
use wom_pcm::{
    EpochSeries, RunMetrics, Session, SessionSpec, ShardPlan, ShardSource, SnapshotError,
    SystemConfig, WomPcmError,
};

/// How a job is executed: shard fan-out, snapshot cadence, observation.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Rank shards to split the run into (`0`/`1` = unsharded). Must
    /// evenly divide the configured rank count.
    pub shards: u32,
    /// Worker threads for the shard fan-out.
    pub threads: usize,
    /// Snapshot cadence and path (`--snapshot-every` / `--resume`).
    /// Sharded runs derive one path per shard via
    /// [`SnapshotSpec::for_shard`].
    pub snapshot: Option<SnapshotSpec>,
    /// Epoch width when the run should record a time series.
    pub epoch_cycles: Option<Cycle>,
}

impl RunOptions {
    /// Unsharded, unobserved, snapshot-free execution — the behaviour of
    /// every runner before these flags existed.
    #[must_use]
    pub fn plain() -> Self {
        Self::default()
    }
}

/// Runs one `(config, spec)` job under `opts` (see module docs).
///
/// Returns the final (merged) metrics, plus the (merged) epoch series
/// when `opts.epoch_cycles` is set.
///
/// # Errors
///
/// Propagates [`WomPcmError`] from configuration validation, shard
/// planning (a shard count that does not divide the ranks), trace
/// streaming, snapshot I/O, or the simulation itself.
pub fn run_spec(
    config: &SystemConfig,
    spec: &TraceSpec,
    opts: &RunOptions,
) -> Result<(RunMetrics, Option<EpochSeries>), WomPcmError> {
    if opts.shards <= 1 {
        let mut cfg = config.clone();
        if let Some(width) = opts.epoch_cycles {
            cfg.set_epoch_cycles(Some(width));
        }
        let source = spec.open()?;
        return run_system(cfg, source, opts.snapshot.as_ref());
    }
    let plan = ShardPlan::new(config, opts.shards)?;
    let indices: Vec<u32> = (0..opts.shards).collect();
    let results = parallel::map(&indices, opts.threads, |&index| {
        let mut cfg = plan.shard_config(index)?;
        if let Some(width) = opts.epoch_cycles {
            cfg.set_epoch_cycles(Some(width));
        }
        let source = ShardSource::new(spec.open()?, &plan, index)?;
        let snapshot = opts.snapshot.as_ref().map(|s| s.for_shard(index));
        run_system(cfg, source, snapshot.as_ref())
    });
    merge_shards(results)
}

/// Reduces per-shard results in fixed shard order; any shard's error
/// (first by shard index) wins.
fn merge_shards(
    results: Vec<Result<(RunMetrics, Option<EpochSeries>), WomPcmError>>,
) -> Result<(RunMetrics, Option<EpochSeries>), WomPcmError> {
    let mut merged: Option<(RunMetrics, Option<EpochSeries>)> = None;
    for result in results {
        let (metrics, series) = result?;
        match &mut merged {
            None => merged = Some((metrics, series)),
            Some((all_metrics, all_series)) => {
                all_metrics.merge(&metrics);
                match (all_series, series) {
                    (Some(all), Some(s)) => all.merge(&s)?,
                    (None, None) => {}
                    _ => {
                        return Err(WomPcmError::Internal(
                            "shards disagree on epoch observation".into(),
                        ))
                    }
                }
            }
        }
    }
    merged.ok_or_else(|| WomPcmError::Internal("no shards were run".into()))
}

/// Sharded run without observation or snapshots: the `--shards N` fast
/// path for sweep binaries.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_sharded(
    config: &SystemConfig,
    spec: &TraceSpec,
    shards: u32,
    threads: usize,
) -> Result<RunMetrics, WomPcmError> {
    let opts = RunOptions {
        shards,
        threads,
        ..RunOptions::plain()
    };
    run_spec(config, spec, &opts).map(|(m, _)| m)
}

/// [`run_sharded`] with epoch observation: also returns the shard-merged
/// epoch series.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_sharded_observed(
    config: &SystemConfig,
    spec: &TraceSpec,
    shards: u32,
    threads: usize,
    epoch_cycles: Cycle,
) -> Result<(RunMetrics, EpochSeries), WomPcmError> {
    let opts = RunOptions {
        shards,
        threads,
        epoch_cycles: Some(epoch_cycles),
        ..RunOptions::plain()
    };
    let (metrics, series) = run_spec(config, spec, &opts)?;
    let series = series.ok_or_else(|| {
        WomPcmError::Internal("epoch observation was enabled but recorded no series".into())
    })?;
    Ok((metrics, series))
}

/// Unsharded resumable run: restore from `snapshot.path` when the file
/// exists, then re-snapshot every `snapshot.every` records.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_resumable(
    config: &SystemConfig,
    spec: &TraceSpec,
    snapshot: &SnapshotSpec,
) -> Result<RunMetrics, WomPcmError> {
    let opts = RunOptions {
        snapshot: Some(snapshot.clone()),
        ..RunOptions::plain()
    };
    run_spec(config, spec, &opts).map(|(m, _)| m)
}

/// Runs a batch of `(config, spec)` jobs under shared options. `labels`
/// names each job (same length as `jobs`) and keys the per-case snapshot
/// paths ([`SnapshotSpec::for_case`]). Jobs without sharding or
/// snapshots fan out across `opts.threads` like
/// [`crate::run_configs_parallel`]; sharded or resumable jobs run one
/// after another with the shard fan-out inside each.
///
/// # Errors
///
/// Propagates the first (by job order) [`WomPcmError`] of any job, or
/// [`WomPcmError::Internal`] when `labels` and `jobs` disagree in length.
pub fn run_configs_spec(
    jobs: &[(SystemConfig, TraceSpec)],
    labels: &[String],
    opts: &RunOptions,
) -> Result<Vec<(RunMetrics, Option<EpochSeries>)>, WomPcmError> {
    if labels.len() != jobs.len() {
        return Err(WomPcmError::Internal(
            "one label per job is required".into(),
        ));
    }
    if opts.shards <= 1 && opts.snapshot.is_none() {
        return parallel::map(jobs, opts.threads, |(cfg, spec)| run_spec(cfg, spec, opts))
            .into_iter()
            .collect();
    }
    jobs.iter()
        .zip(labels)
        .map(|((cfg, spec), label)| {
            let job_opts = RunOptions {
                snapshot: opts.snapshot.as_ref().map(|s| s.for_case(label)),
                ..opts.clone()
            };
            run_spec(cfg, spec, &job_opts)
        })
        .collect()
}

/// Drives one session over one source with optional restore-and-snapshot,
/// returning the finished metrics (and epoch series when observed).
fn run_system<S: TraceSource>(
    config: SystemConfig,
    mut source: S,
    snapshot: Option<&SnapshotSpec>,
) -> Result<(RunMetrics, Option<EpochSeries>), WomPcmError> {
    let observed = config.epoch_cycles().is_some();
    let session_spec = SessionSpec::new(config);
    let mut session = match snapshot.map(|spec| std::fs::read(&spec.path)) {
        Some(Ok(bytes)) => Session::resume(session_spec, &bytes)?,
        Some(Err(e)) if e.kind() != std::io::ErrorKind::NotFound => {
            return Err(SnapshotError::from(e).into())
        }
        _ => Session::open(session_spec)?,
    };
    let mut skip = session.records_fed();
    let mut since_snapshot: u64 = 0;
    while let Some(chunk) = source.next_chunk()? {
        let len = chunk.len() as u64;
        if skip >= len {
            skip -= len;
            continue;
        }
        // Boundary chunk on resume: submit only the unconsumed tail.
        let tail = chunk.get(skip as usize..).unwrap_or_default();
        skip = 0;
        session.feed(tail)?;
        since_snapshot += tail.len() as u64;
        if let Some(spec) = snapshot {
            if let Some(every) = spec.every {
                if since_snapshot >= every {
                    let bytes = session.checkpoint()?;
                    std::fs::write(&spec.path, bytes).map_err(SnapshotError::from)?;
                    since_snapshot = 0;
                }
            }
        }
    }
    let metrics = session.finish()?;
    let series = if observed {
        session.into_epochs()
    } else {
        None
    };
    Ok((metrics, series))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_trace::synth::benchmarks;
    use wom_pcm::{Architecture, SystemBuilder};

    fn job() -> (SystemConfig, TraceSpec) {
        let cfg = SystemBuilder::new(Architecture::WomCodeRefresh)
            .rows_per_bank(4096)
            .into_config();
        let profile = benchmarks::by_name("qsort").expect("bundled workload");
        (cfg, TraceSpec::synth(profile, 7, 4_000))
    }

    #[test]
    fn unsharded_run_spec_matches_plain_run() {
        let (cfg, spec) = job();
        let mut source = spec.open().unwrap();
        let mut plain_session = Session::open(cfg.clone()).unwrap();
        plain_session.feed_source(&mut source).unwrap();
        let plain = plain_session.finish().unwrap();
        let (m, series) = run_spec(&cfg, &spec, &RunOptions::plain()).unwrap();
        assert!(series.is_none());
        assert_eq!(format!("{m:#?}"), format!("{plain:#?}"));
    }

    #[test]
    fn shard_count_must_divide_the_ranks() {
        let (cfg, spec) = job();
        assert!(run_sharded(&cfg, &spec, 5, 1).is_err(), "16 % 5 != 0");
        assert!(run_sharded(&cfg, &spec, 8, 1).is_ok());
    }

    #[test]
    fn sharded_shards_account_for_every_record() {
        let (cfg, spec) = job();
        let whole = run_spec(&cfg, &spec, &RunOptions::plain()).unwrap().0;
        let sharded = run_sharded(&cfg, &spec, 8, 1).unwrap();
        // Different decomposition, same demand stream: every submitted
        // access lands in exactly one shard.
        assert_eq!(
            sharded.reads.count + sharded.writes.count,
            whole.reads.count + whole.writes.count
        );
    }

    #[test]
    fn mismatched_labels_are_rejected() {
        let (cfg, spec) = job();
        assert!(run_configs_spec(&[(cfg, spec)], &[], &RunOptions::plain()).is_err());
    }
}
