//! Multi-program consolidation: the paper captures single-program traces
//! on one core, but §1 motivates next-generation memory with consolidated
//! ("big data", exascale) load. This experiment interleaves several
//! programs onto the one channel and watches each architecture's
//! improvement as pressure rises — PCM-refresh degrades gracefully as
//! idle cycles vanish (the §1 argument against idle-cycle scheduling),
//! while WCPCM keeps working.
//!
//! Usage: `consolidation [records-per-program] [seed]` (defaults: 20000, 2014).

use pcm_trace::synth::benchmarks;
use pcm_trace::transform::{interleave, offset_addresses};
use pcm_trace::TraceRecord;
use wom_pcm::{Architecture, SystemBuilder};

const PROGRAMS: [&str; 4] = ["401.bzip2", "464.h264ref", "482.sphinx3", "water-ns"];

fn consolidated(n_programs: usize, records: usize, seed: u64) -> Vec<TraceRecord> {
    let traces: Vec<Vec<TraceRecord>> = PROGRAMS
        .iter()
        .take(n_programs)
        .enumerate()
        .map(|(i, name)| {
            let t = benchmarks::by_name(name)
                .expect("paper workload")
                .generate(seed, records);
            // Give each program its own GiB so footprints do not alias.
            offset_addresses(&t, (i as u64) << 30)
        })
        .collect();
    interleave(&traces)
}

const USAGE: &str = "consolidation [records-per-program] [seed]";

fn main() {
    let mut cli = wom_pcm_bench::cli::Parser::from_env(USAGE);
    let records: usize = cli.positional("records", 20_000);
    let seed: u64 = cli.positional("seed", 2014);
    cli.finish();

    println!(
        "{:>10}{:>14}{:>12}{:>14}{:>12}",
        "programs", "baseline ns", "wom-code", "pcm-refresh", "wcpcm"
    );
    for n in 1..=PROGRAMS.len() {
        let trace = consolidated(n, records, seed);
        let mut row = Vec::new();
        let mut base = 0.0;
        for arch in Architecture::all_paper() {
            let mut session = SystemBuilder::new(arch)
                .rows_per_bank(4096)
                .open()
                .expect("valid config");
            session.feed(&trace).expect("trace runs");
            let m = session.finish().expect("trace finishes");
            if arch == Architecture::Baseline {
                base = m.mean_write_ns();
            }
            row.push(m.mean_write_ns());
        }
        println!(
            "{:>10}{:>14.1}{:>12.3}{:>14.3}{:>12.3}",
            n,
            base,
            row[1] / base,
            row[2] / base,
            row[3] / base
        );
    }
    println!(
        "\nnormalized write latency vs the same consolidation level's baseline.\n\
         as programs stack up, idle ranks disappear and PCM-refresh's edge over\n\
         plain WOM-code narrows - the behaviour §1 predicts for idle-cycle\n\
         techniques under high-performance load."
    );
}
