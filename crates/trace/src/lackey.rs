//! Importing Valgrind Lackey memory traces.
//!
//! The paper captured traces with Pin, which is not redistributable; the
//! closest freely available equivalent is Valgrind's `lackey` tool:
//!
//! ```console
//! valgrind --tool=lackey --trace-mem=yes ./your_program 2> program.lackey
//! ```
//!
//! Lackey emits one line per access: ` L addr,size` (load), ` S addr,size`
//! (store), ` M addr,size` (modify = load + store), and `I addr,size`
//! (instruction fetch, skipped here — the paper's traces are data
//! accesses). Lackey records no timestamps, so arrival cycles are
//! synthesized with a configurable mean gap, and accesses wider than a
//! cache line are split into per-line records — the stream the memory
//! controller would actually see below an LLC with no filtering.

use crate::record::{TraceOp, TraceRecord};
use crate::synth::LINE_BYTES;
use std::io::BufRead;

/// Errors from the Lackey importer.
#[derive(Debug)]
#[non_exhaustive]
pub enum LackeyError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed access line; carries the 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl core::fmt::Display for LackeyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "lackey i/o error: {e}"),
            Self::Parse { line, reason } => {
                write!(f, "lackey parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for LackeyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for LackeyError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses one Lackey line into `(op, addr, size)`; `Ok(None)` for
/// instruction fetches and non-access lines (lackey mixes in counters and
/// banner text).
fn parse_access(line: &str) -> Option<Result<(char, u64, u64), String>> {
    let trimmed = line.trim_start();
    let kind = trimmed.chars().next()?;
    if !matches!(kind, 'L' | 'S' | 'M') {
        return None; // 'I', banners, blank lines, summary output
    }
    // Accept only the canonical " X addr,size" shape. `kind` came from
    // `chars().next()` so `get(1..)` always succeeds; `?` just avoids the
    // panic-capable slice index.
    let rest = trimmed.get(1..)?.trim_start();
    let (addr_s, size_s) = rest.split_once(',')?;
    let addr = match u64::from_str_radix(addr_s.trim(), 16) {
        Ok(a) => a,
        Err(e) => return Some(Err(format!("bad address {addr_s:?}: {e}"))),
    };
    let size = match size_s.trim().parse::<u64>() {
        Ok(s) if s > 0 => s,
        Ok(s) => return Some(Err(format!("zero-size access {s}"))),
        Err(e) => return Some(Err(format!("bad size {size_s:?}: {e}"))),
    };
    Some(Ok((kind, addr, size)))
}

/// Reads a whole Lackey capture, synthesizing arrival cycles with
/// `gap_cycles` between consecutive memory records. A `&mut` reference
/// may be passed as the reader.
///
/// Loads become reads; stores become writes; modifies become a read
/// followed by a write at the same address. Accesses spanning cache-line
/// boundaries are split per line.
///
/// # Errors
///
/// Returns [`LackeyError`] for I/O failures or malformed access lines
/// (unknown lines are skipped, matching lackey's chatty output).
pub fn read_lackey<R: BufRead>(
    reader: R,
    gap_cycles: u64,
) -> Result<Vec<TraceRecord>, LackeyError> {
    let gap = gap_cycles.max(1);
    let mut out = Vec::new();
    let mut cycle = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let Some(parsed) = parse_access(&line) else {
            continue;
        };
        let (kind, addr, size) = parsed.map_err(|reason| LackeyError::Parse {
            line: idx + 1,
            reason,
        })?;
        let first_line = addr / LINE_BYTES;
        let last_line = (addr + size - 1) / LINE_BYTES;
        for l in first_line..=last_line {
            let line_addr = l * LINE_BYTES;
            match kind {
                'L' => {
                    cycle += gap;
                    out.push(TraceRecord::new(cycle, line_addr, TraceOp::Read));
                }
                'S' => {
                    cycle += gap;
                    out.push(TraceRecord::new(cycle, line_addr, TraceOp::Write));
                }
                'M' => {
                    cycle += gap;
                    out.push(TraceRecord::new(cycle, line_addr, TraceOp::Read));
                    cycle += gap;
                    out.push(TraceRecord::new(cycle, line_addr, TraceOp::Write));
                }
                _ => unreachable!("parse_access filters kinds"),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
==1234== Lackey, an example Valgrind tool
I  0400aa10,3
 L 04001000,8
 S 04001040,4
 M 04002000,8
I  0400aa13,5
 L 04003fc0,128
==1234== done
";

    #[test]
    fn imports_loads_stores_and_modifies() {
        let records = read_lackey(SAMPLE.as_bytes(), 10).unwrap();
        // L(1) + S(1) + M(2) + wide L split over 2 lines = 6 records.
        assert_eq!(records.len(), 6);
        assert_eq!(records[0].op, TraceOp::Read);
        assert_eq!(records[0].addr, 0x04001000);
        assert_eq!(records[1].op, TraceOp::Write);
        assert_eq!(records[1].addr, 0x04001040);
        // Modify = read then write at the same line.
        assert_eq!(records[2].op, TraceOp::Read);
        assert_eq!(records[3].op, TraceOp::Write);
        assert_eq!(records[2].addr, records[3].addr);
    }

    #[test]
    fn wide_accesses_split_per_line() {
        let records = read_lackey(" L 04003fc0,128\n".as_bytes(), 5).unwrap();
        // 128 bytes starting at 0x3fc0 touches lines 0x3fc0 and 0x4000.
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].addr, 0x04003fc0);
        assert_eq!(records[1].addr, 0x04004000);
    }

    #[test]
    fn cycles_are_monotone_with_the_gap() {
        let records = read_lackey(SAMPLE.as_bytes(), 7).unwrap();
        let mut last = 0;
        for r in &records {
            assert!(r.cycle > last);
            assert_eq!((r.cycle - last) % 7, 0);
            last = r.cycle;
        }
    }

    #[test]
    fn instruction_fetches_and_banners_are_skipped() {
        let records = read_lackey("I 0400aa10,3\n==99== banner\n\n".as_bytes(), 1).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn malformed_access_lines_error_with_position() {
        let err = read_lackey(" L zzzz,8\n".as_bytes(), 1).unwrap_err();
        match err {
            LackeyError::Parse { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("zzzz"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(
            read_lackey(" S 0400,0\n".as_bytes(), 1).is_err(),
            "zero-size access"
        );
    }

    #[test]
    fn imported_traces_drive_the_stats_pipeline() {
        let records = read_lackey(SAMPLE.as_bytes(), 10).unwrap();
        let stats = crate::stats::TraceStats::from_records(records.iter().copied(), 1024);
        assert_eq!(stats.accesses, 6);
        assert_eq!(stats.writes, 2);
    }
}
