//! The event-driven memory system: queues, scheduler, banks, and bus.
//!
//! This is the DRAMSim2-equivalent substrate the paper extends: a
//! transaction-level, cycle-resolution simulator of one memory channel.
//! Demand reads and writes flow through bounded read/write queues into
//! per-bank timing state machines; a shared data bus models channel
//! contention; rank-refresh batches model the paper's burst-mode
//! PCM-refresh command, preemptible under write pausing.
//!
//! The simulator is *event-driven*: time advances directly to the next
//! bank/bus event rather than ticking every cycle, which keeps multi-
//! billion-cycle runs tractable while preserving cycle-accurate ordering.

use crate::address::AddressDecoder;
use crate::bank::BankState;
use crate::config::{MemConfig, RowPolicy, SchedulerPolicy};
use crate::error::SimError;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::stats::MemStats;
use crate::timing::Cycle;
use crate::transaction::{Completion, MemOp, ServiceClass, Transaction, TransactionId};
use crate::wear::WearTracker;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// A queued burst-mode rank refresh (one row per listed bank).
#[derive(Debug, Clone)]
struct RefreshBatch {
    rank: u32,
    /// `(bank, row)` pairs to refresh, at most one per bank.
    rows: Vec<(u32, u32)>,
}

/// Pending completion ordered by finish cycle (then id for determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending(Completion);

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.finish, self.0.id).cmp(&(other.0.finish, other.0.id))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A single-channel memory system under test.
///
/// Drive it by alternating [`advance_to`](MemorySystem::advance_to) (moving
/// simulated time forward, collecting [`Completion`]s) with
/// [`enqueue`](MemorySystem::enqueue) calls at the current time.
///
/// ```
/// use pcm_sim::{MemConfig, MemOp, MemorySystem, ServiceClass};
///
/// # fn main() -> Result<(), pcm_sim::SimError> {
/// let mut mem = MemorySystem::new(MemConfig::tiny())?;
/// mem.enqueue(MemOp::Write, 0x40, ServiceClass::Write)?;
/// mem.enqueue(MemOp::Read, 0x1000, ServiceClass::Read)?;
/// let done = mem.drain();
/// assert_eq!(done.len(), 2);
/// assert_eq!(mem.stats().write_latency.count, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    decoder: AddressDecoder,
    now: Cycle,
    next_id: TransactionId,
    banks: Vec<BankState>,
    bus_free_at: Cycle,
    read_q: VecDeque<Transaction>,
    write_q: VecDeque<Transaction>,
    refresh_q: VecDeque<RefreshBatch>,
    /// `(first id, row count)` per queued batch. Ids are handed out from
    /// the monotonic `next_id` counter at enqueue, so a batch's ids are
    /// always the consecutive run starting at `first` — storing the run
    /// instead of a `Vec` keeps the refresh enqueue path allocation-free.
    refresh_ids: VecDeque<(TransactionId, u32)>,
    /// Emptied row buffers recycled from issued batches; `enqueue_rank_refresh`
    /// reuses them so steady-state refresh traffic stops allocating.
    spare_rows: Vec<Vec<(u32, u32)>>,
    events: BTreeSet<Cycle>,
    pending: BinaryHeap<Reverse<Pending>>,
    cancelled: BTreeSet<TransactionId>,
    /// Keyed by transaction id; `BTreeMap` so any future iteration stays
    /// deterministic (womlint: determinism/banned-type).
    refresh_addrs: BTreeMap<TransactionId, u64>,
    out: Vec<Completion>,
    stats: MemStats,
    wear: WearTracker,
    draining_writes: bool,
    queued_per_rank: Vec<usize>,
}

impl MemorySystem {
    /// Builds a memory system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `config.validate()` fails.
    pub fn new(config: MemConfig) -> Result<Self, SimError> {
        config.validate()?;
        let decoder = AddressDecoder::new(config.geometry, config.mapping)?;
        let total_banks = config.geometry.total_banks() as usize;
        Ok(Self {
            decoder,
            now: 0,
            next_id: 0,
            banks: vec![BankState::new(); total_banks],
            bus_free_at: 0,
            read_q: VecDeque::with_capacity(config.read_queue_capacity),
            write_q: VecDeque::with_capacity(config.write_queue_capacity),
            refresh_q: VecDeque::new(),
            refresh_ids: VecDeque::new(),
            spare_rows: Vec::new(),
            events: BTreeSet::new(),
            pending: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            refresh_addrs: BTreeMap::new(),
            out: Vec::new(),
            stats: MemStats::new(),
            wear: WearTracker::new(),
            draining_writes: false,
            queued_per_rank: vec![0; config.geometry.ranks as usize],
            config,
        })
    }

    /// Current simulated time in cycles.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// The address decoder (geometry + mapping).
    #[must_use]
    pub fn decoder(&self) -> &AddressDecoder {
        &self.decoder
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Per-row wear counters accumulated so far.
    #[must_use]
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Occupancy of the read queue.
    #[must_use]
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Occupancy of the write queue.
    #[must_use]
    pub fn write_queue_len(&self) -> usize {
        self.write_q.len()
    }

    /// Whether another read can be enqueued without [`SimError::QueueFull`].
    #[must_use]
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.config.read_queue_capacity
    }

    /// Whether another write can be enqueued without [`SimError::QueueFull`].
    #[must_use]
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.config.write_queue_capacity
    }

    /// True when every bank of `rank` is idle and no demand access for the
    /// rank is queued — the paper's criterion for a PCM-refresh target.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn is_rank_idle(&self, rank: u32) -> bool {
        assert!(
            rank < self.config.geometry.ranks,
            "rank {rank} out of range"
        );
        if self.queued_per_rank[rank as usize] > 0 {
            return false;
        }
        let banks = self.config.geometry.banks_per_rank as usize;
        let base = rank as usize * banks;
        self.banks[base..base + banks]
            .iter()
            .all(|b| b.is_free(self.now))
    }

    /// True when no demand access for `rank` is queued (its banks may
    /// still be finishing in-flight work). Under write pausing this is
    /// enough for a refresh to start: any later demand access preempts it.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn rank_queue_empty(&self, rank: u32) -> bool {
        assert!(
            rank < self.config.geometry.ranks,
            "rank {rank} out of range"
        );
        self.queued_per_rank[rank as usize] == 0
    }

    /// Whether `(rank, bank)` is free at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `bank` are out of range.
    #[must_use]
    pub fn is_bank_free(&self, rank: u32, bank: u32) -> bool {
        assert!(
            rank < self.config.geometry.ranks,
            "rank {rank} out of range"
        );
        assert!(
            bank < self.config.geometry.banks_per_rank,
            "bank {bank} out of range"
        );
        self.banks[self.flat_bank(rank, bank)].is_free(self.now)
    }

    /// Submits a demand access at the current time.
    ///
    /// # Errors
    ///
    /// * [`SimError::QueueFull`] when the respective queue is at capacity —
    ///   advance time and retry.
    /// * [`SimError::InvalidConfig`] when `op` and `class` are inconsistent
    ///   (reads must use [`ServiceClass::Read`]; writes must use
    ///   [`ServiceClass::Write`] or [`ServiceClass::ResetOnlyWrite`]).
    pub fn enqueue(
        &mut self,
        op: MemOp,
        addr: u64,
        class: ServiceClass,
    ) -> Result<TransactionId, SimError> {
        match (op, class) {
            (MemOp::Read, ServiceClass::Read)
            | (MemOp::Write, ServiceClass::Write)
            | (MemOp::Write, ServiceClass::ResetOnlyWrite) => {}
            _ => {
                // womlint::allow(hotpath/transitive, reason = "invalid-request error path: allocates once, then the run aborts")
                return Err(SimError::InvalidConfig(format!(
                    "service class {class:?} is not valid for {op:?}"
                )));
            }
        }
        let (queue, cap) = match op {
            MemOp::Read => (&self.read_q, self.config.read_queue_capacity),
            MemOp::Write => (&self.write_q, self.config.write_queue_capacity),
        };
        if queue.len() >= cap {
            return Err(SimError::QueueFull { capacity: cap });
        }
        let id = self.next_id;
        self.next_id += 1;
        let txn = Transaction {
            id,
            addr,
            op,
            class,
            arrival: self.now,
        };
        let rank = self.decoder.decode(addr).rank as usize;
        self.queued_per_rank[rank] += 1;
        match op {
            MemOp::Read => self.read_q.push_back(txn),
            MemOp::Write => self.write_q.push_back(txn),
        }
        self.try_issue();
        Ok(id)
    }

    /// Queues a burst-mode PCM-refresh of one row in each listed bank of
    /// `rank` (§3.2). The batch issues once every listed bank is free and
    /// occupies them for `t_WR + N_bank · L_burst / 2` cycles; individual
    /// banks may be preempted by demand accesses (write pausing), in which
    /// case their row reports a `preempted` completion and is *not*
    /// refreshed.
    ///
    /// Returns the first transaction id of the batch; the `k`-th
    /// `(bank, row)` pair is assigned id `first + k`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IndexOutOfRange`] for a bad rank/bank/row, or
    /// [`SimError::InvalidConfig`] for an empty batch or duplicate banks.
    pub fn enqueue_rank_refresh(
        &mut self,
        rank: u32,
        rows: &[(u32, u32)],
    ) -> Result<TransactionId, SimError> {
        let g = &self.config.geometry;
        if rank >= g.ranks {
            return Err(SimError::IndexOutOfRange {
                what: "rank",
                index: u64::from(rank),
                limit: u64::from(g.ranks),
            });
        }
        if rows.is_empty() {
            return Err(SimError::InvalidConfig(
                "refresh batch must list at least one row".into(),
            ));
        }
        let mut seen = BTreeSet::new();
        for &(bank, row) in rows {
            if bank >= g.banks_per_rank {
                return Err(SimError::IndexOutOfRange {
                    what: "bank",
                    index: u64::from(bank),
                    limit: u64::from(g.banks_per_rank),
                });
            }
            if row >= g.rows_per_bank {
                return Err(SimError::IndexOutOfRange {
                    what: "row",
                    index: u64::from(row),
                    limit: u64::from(g.rows_per_bank),
                });
            }
            if !seen.insert(bank) {
                // womlint::allow(hotpath/transitive, reason = "invalid-batch error path: allocates once, then the run aborts")
                return Err(SimError::InvalidConfig(format!(
                    "refresh batch lists bank {bank} twice"
                )));
            }
        }
        let first = self.next_id;
        self.next_id += rows.len() as u64;
        // Batches are issued FIFO; the (first, count) run is stashed
        // alongside so issue assigns the same ids in order. The row
        // buffer is recycled from a previously issued batch, so
        // steady-state refresh traffic allocates nothing.
        let mut owned = self.spare_rows.pop().unwrap_or_default();
        owned.clear();
        owned.extend_from_slice(rows);
        self.refresh_q.push_back(RefreshBatch { rank, rows: owned });
        self.refresh_ids.push_back((first, rows.len() as u32));
        self.try_issue();
        Ok(first)
    }

    /// Advances simulated time to `cycle`, returning every completion that
    /// finished in the interval (in finish order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeRegression`] if `cycle` is in the past.
    pub fn advance_to(&mut self, cycle: Cycle) -> Result<Vec<Completion>, SimError> {
        if cycle < self.now {
            return Err(SimError::TimeRegression {
                now: self.now,
                requested: cycle,
            });
        }
        loop {
            let next = self.events.iter().next().copied();
            match next {
                Some(e) if e <= cycle => {
                    self.events.remove(&e);
                    if e > self.now {
                        self.now = e;
                    }
                    self.flush_completions();
                    self.try_issue();
                }
                _ => break,
            }
        }
        self.now = cycle;
        self.flush_completions();
        self.try_issue();
        Ok(std::mem::take(&mut self.out))
    }

    /// Runs until all queues are empty and all in-flight work completes,
    /// returning the completions.
    pub fn drain(&mut self) -> Vec<Completion> {
        loop {
            let work_left = !(self.read_q.is_empty()
                && self.write_q.is_empty()
                && self.refresh_q.is_empty()
                && self.pending.is_empty());
            if !work_left {
                break;
            }
            match self.events.iter().next().copied() {
                Some(e) => {
                    self.events.remove(&e);
                    if e > self.now {
                        self.now = e;
                    }
                    self.flush_completions();
                    self.try_issue();
                }
                None => {
                    // No future event can unblock remaining work; only
                    // possible if a refresh batch waits on banks that a
                    // demand stream keeps occupied — impossible once queues
                    // are empty — so treat as quiesced.
                    break;
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    fn flat_bank(&self, rank: u32, bank: u32) -> usize {
        (rank * self.config.geometry.banks_per_rank + bank) as usize
    }

    fn flush_completions(&mut self) {
        while let Some(Reverse(Pending(c))) = self.pending.peek().copied() {
            if c.finish > self.now {
                break;
            }
            self.pending.pop();
            if self.cancelled.remove(&c.id) {
                continue;
            }
            if c.class == ServiceClass::RankRefresh {
                self.refresh_addrs.remove(&c.id);
            }
            self.account_energy_and_wear(&c);
            self.stats.record(&c);
            self.out.push(c);
        }
    }

    /// Charges a finished operation's energy and wear.
    fn account_energy_and_wear(&mut self, c: &Completion) {
        let e = &self.config.energy;
        let access_bits = u64::from(self.config.geometry.access_bytes) * 8;
        let row_bits = u64::from(self.config.geometry.row_bytes) * 8;
        match c.class {
            ServiceClass::Read => self.stats.energy.read_pj += e.read_pj(access_bits),
            ServiceClass::Write => {
                self.stats.energy.full_write_pj += e.full_write_pj(access_bits);
                let row = self.decoder.decode(c.addr).flat_row(&self.config.geometry);
                self.wear.record_full_write(row);
            }
            ServiceClass::ResetOnlyWrite => {
                self.stats.energy.reset_write_pj += e.reset_only_write_pj(access_bits);
                let row = self.decoder.decode(c.addr).flat_row(&self.config.geometry);
                self.wear.record_reset_write(row);
            }
            ServiceClass::RankRefresh => {
                if !c.preempted {
                    self.stats.energy.refresh_pj += e.refresh_pj(row_bits);
                    let row = self.decoder.decode(c.addr).flat_row(&self.config.geometry);
                    self.wear.record_full_write(row);
                }
            }
        }
    }

    fn service_cycles(&self, class: ServiceClass, flat_bank: usize, row: u32) -> Cycle {
        let t = &self.config.timing;
        match class {
            ServiceClass::Read => {
                let hit = self.config.row_policy == RowPolicy::OpenPage
                    && self.banks[flat_bank].open_row() == Some(row);
                if hit {
                    t.row_hit_read_cycles() + t.burst_cycles()
                } else {
                    t.read_cycles() + t.burst_cycles()
                }
            }
            ServiceClass::Write => t.write_cycles(),
            ServiceClass::ResetOnlyWrite => t.reset_cycles(),
            ServiceClass::RankRefresh => t.rank_refresh_cycles(self.config.geometry.banks_per_rank),
        }
        .max(1)
    }

    /// Issues every transaction that can start at the current cycle.
    fn try_issue(&mut self) {
        // Hysteretic write draining (disabled under read-always-first).
        if self.config.scheduler == SchedulerPolicy::ReadAlwaysFirst {
            self.draining_writes = false;
        } else if self.write_q.len() >= self.config.write_high_watermark {
            self.draining_writes = true;
        } else if self.write_q.len() <= self.config.write_low_watermark {
            self.draining_writes = false;
        }
        loop {
            let mut progressed = false;
            let order: [MemOp; 2] = if self.draining_writes {
                [MemOp::Write, MemOp::Read]
            } else {
                [MemOp::Read, MemOp::Write]
            };
            'queues: for op in order {
                let len = match op {
                    MemOp::Read => self.read_q.len(),
                    MemOp::Write => self.write_q.len(),
                };
                // Strict FCFS only ever considers the queue head.
                let window = match self.config.scheduler {
                    SchedulerPolicy::StrictFcfs => len.min(1),
                    _ => len,
                };
                for idx in 0..window {
                    let txn = match op {
                        MemOp::Read => self.read_q[idx],
                        MemOp::Write => self.write_q[idx],
                    };
                    if self.try_issue_demand(&txn) {
                        match op {
                            MemOp::Read => {
                                self.read_q.remove(idx);
                            }
                            MemOp::Write => {
                                self.write_q.remove(idx);
                            }
                        }
                        progressed = true;
                        break 'queues; // re-evaluate drain mode and order
                    }
                }
            }
            // Refresh batches issue only behind demand traffic.
            if !progressed {
                progressed = self.try_issue_refresh();
            }
            if !progressed {
                break;
            }
        }
    }

    /// Attempts to start one demand transaction; true if issued.
    fn try_issue_demand(&mut self, txn: &Transaction) -> bool {
        let d = self.decoder.decode(txn.addr);
        let flat = self.flat_bank(d.rank, d.bank);
        // Write pausing: a bank busy with a preemptible refresh yields to
        // demand accesses immediately.
        if !self.banks[flat].is_free(self.now) {
            if !self.config.write_pausing {
                return false;
            }
            // `preempt` refuses idle banks and non-preemptible classes, so
            // it doubles as the write-pausing eligibility check.
            let Some(aborted) = self.banks[flat].preempt(self.now) else {
                return false;
            };
            let addr = self.refresh_addrs.remove(&aborted.id).unwrap_or_default();
            self.cancelled.insert(aborted.id);
            let c = Completion {
                id: aborted.id,
                addr,
                op: MemOp::Write,
                class: ServiceClass::RankRefresh,
                arrival: aborted.start,
                start: aborted.start,
                finish: self.now,
                preempted: true,
            };
            self.stats.record(&c);
            self.out.push(c);
        }
        // Shared channel data bus: one burst at a time.
        if self.bus_free_at > self.now {
            self.events.insert(self.bus_free_at);
            return false;
        }
        let service = self.service_cycles(txn.class, flat, d.row);
        let start = self.now;
        let finish = start + service;
        self.banks[flat].begin(txn.id, txn.class, start, finish, d.row);
        self.bus_free_at = self.now + self.config.timing.burst_cycles();
        self.events.insert(finish);
        self.queued_per_rank[d.rank as usize] -= 1;
        self.pending.push(Reverse(Pending(Completion {
            id: txn.id,
            addr: txn.addr,
            op: txn.op,
            class: txn.class,
            arrival: txn.arrival,
            start,
            finish,
            preempted: false,
        })));
        true
    }

    /// Attempts to start the oldest refresh batch whose banks are all free;
    /// true if one issued.
    fn try_issue_refresh(&mut self) -> bool {
        let Some(batch) = self.refresh_q.front() else {
            return false;
        };
        let all_free = batch
            .rows
            .iter()
            .all(|&(bank, _)| self.banks[self.flat_bank(batch.rank, bank)].is_free(self.now));
        if !all_free {
            return false;
        }
        // Batches and their id runs are pushed together at enqueue, so
        // both queues pop in lockstep.
        let (batch, (first, _)) = match (self.refresh_q.pop_front(), self.refresh_ids.pop_front()) {
            (Some(batch), Some(run)) => (batch, run),
            _ => return false,
        };
        let dur = self
            .config
            .timing
            .rank_refresh_cycles(self.config.geometry.banks_per_rank);
        let finish = self.now + dur;
        for (k, &(bank, row)) in batch.rows.iter().enumerate() {
            let id = first + k as u64;
            // Encode before `begin` so a failure (impossible: coordinates
            // are validated at enqueue) cannot leave a bank busy with no
            // pending completion.
            let Ok(addr) = self.decoder.encode(crate::address::DecodedAddr {
                rank: batch.rank,
                bank,
                row,
                column: 0,
            }) else {
                continue;
            };
            let flat = self.flat_bank(batch.rank, bank);
            self.banks[flat].begin(id, ServiceClass::RankRefresh, self.now, finish, row);
            self.refresh_addrs.insert(id, addr);
            self.pending.push(Reverse(Pending(Completion {
                id,
                addr,
                op: MemOp::Write,
                class: ServiceClass::RankRefresh,
                arrival: self.now,
                start: self.now,
                finish,
                preempted: false,
            })));
        }
        self.events.insert(finish);
        // Recycle the emptied row buffer for the next enqueue.
        let mut rows = batch.rows;
        rows.clear();
        self.spare_rows.push(rows);
        true
    }

    // ------------------------------------------------------------------
    // Snapshot/restore
    // ------------------------------------------------------------------

    /// Serializes the complete mid-flight controller state (everything
    /// except the configuration, which the restorer must already hold).
    ///
    /// The pending-completion heap is written in `(finish, id)` order so
    /// identical states always produce identical bytes regardless of the
    /// heap's internal array layout.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.now);
        w.put_u64(self.next_id);
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            bank.save_state(w);
        }
        w.put_u64(self.bus_free_at);
        save_txn_queue(&self.read_q, w);
        save_txn_queue(&self.write_q, w);
        w.put_usize(self.refresh_q.len());
        for batch in &self.refresh_q {
            w.put_u32(batch.rank);
            w.put_usize(batch.rows.len());
            for &(bank, row) in &batch.rows {
                w.put_u32(bank);
                w.put_u32(row);
            }
        }
        // Id runs are written as explicit length-prefixed lists — the
        // same bytes the pre-run encoding produced — so the container
        // format is unchanged and old snapshots stay readable.
        w.put_usize(self.refresh_ids.len());
        for &(first, count) in &self.refresh_ids {
            w.put_usize(count as usize);
            for k in 0..u64::from(count) {
                w.put_u64(first + k);
            }
        }
        w.put_usize(self.events.len());
        for &cycle in &self.events {
            w.put_u64(cycle);
        }
        let mut pending: Vec<Completion> =
            self.pending.iter().map(|Reverse(Pending(c))| *c).collect();
        pending.sort_by_key(|c| (c.finish, c.id));
        w.put_usize(pending.len());
        for c in &pending {
            c.save_state(w);
        }
        w.put_usize(self.cancelled.len());
        for &id in &self.cancelled {
            w.put_u64(id);
        }
        w.put_usize(self.refresh_addrs.len());
        for (&id, &addr) in &self.refresh_addrs {
            w.put_u64(id);
            w.put_u64(addr);
        }
        w.put_usize(self.out.len());
        for c in &self.out {
            c.save_state(w);
        }
        self.stats.save_state(w);
        self.wear.save_state(w);
        w.put_bool(self.draining_writes);
        w.put_usize(self.queued_per_rank.len());
        for &n in &self.queued_per_rank {
            w.put_usize(n);
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// freshly built system of the *same configuration*.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation, bad enum tags, or per-geometry vector
    /// lengths that contradict this system's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = r.take_u64()?;
        self.next_id = r.take_u64()?;
        let bank_count = r.take_len(2)?;
        if bank_count != self.banks.len() {
            return Err(SnapError::Corrupt("bank count differs from the config"));
        }
        for bank in self.banks.iter_mut() {
            *bank = BankState::load_state(r)?;
        }
        self.bus_free_at = r.take_u64()?;
        self.read_q = load_txn_queue(r)?;
        self.write_q = load_txn_queue(r)?;
        let batches = r.take_len(4)?;
        self.refresh_q.clear();
        for _ in 0..batches {
            let rank = r.take_u32()?;
            let rows_len = r.take_len(8)?;
            let mut rows = Vec::with_capacity(rows_len);
            for _ in 0..rows_len {
                let bank = r.take_u32()?;
                let row = r.take_u32()?;
                rows.push((bank, row));
            }
            self.refresh_q.push_back(RefreshBatch { rank, rows });
        }
        let id_lists = r.take_len(8)?;
        self.refresh_ids.clear();
        for _ in 0..id_lists {
            // Ids are assigned from a monotonic counter at enqueue, so a
            // valid snapshot always lists a consecutive run; anything
            // else is corruption, not an older encoding.
            let len = r.take_len(8)?;
            if len == 0 {
                return Err(SnapError::Corrupt("empty refresh id list"));
            }
            let first = r.take_u64()?;
            for k in 1..len as u64 {
                if r.take_u64()? != first + k {
                    return Err(SnapError::Corrupt("non-consecutive refresh ids"));
                }
            }
            self.refresh_ids.push_back((first, len as u32));
        }
        let events = r.take_len(8)?;
        self.events.clear();
        for _ in 0..events {
            self.events.insert(r.take_u64()?);
        }
        let pending = r.take_len(8)?;
        self.pending.clear();
        for _ in 0..pending {
            self.pending
                .push(Reverse(Pending(Completion::load_state(r)?)));
        }
        let cancelled = r.take_len(8)?;
        self.cancelled.clear();
        for _ in 0..cancelled {
            self.cancelled.insert(r.take_u64()?);
        }
        let addrs = r.take_len(16)?;
        self.refresh_addrs.clear();
        for _ in 0..addrs {
            let id = r.take_u64()?;
            let addr = r.take_u64()?;
            self.refresh_addrs.insert(id, addr);
        }
        let out = r.take_len(8)?;
        self.out.clear();
        for _ in 0..out {
            self.out.push(Completion::load_state(r)?);
        }
        self.stats = MemStats::load_state(r)?;
        self.wear = WearTracker::load_state(r)?;
        self.draining_writes = r.take_bool()?;
        let ranks = r.take_len(8)?;
        if ranks != self.queued_per_rank.len() {
            return Err(SnapError::Corrupt("rank count differs from the config"));
        }
        for n in self.queued_per_rank.iter_mut() {
            let raw = r.take_u64()?;
            *n = usize::try_from(raw)
                .map_err(|_| SnapError::Corrupt("queued_per_rank overflows usize"))?;
        }
        Ok(())
    }
}

fn save_txn_queue(q: &VecDeque<Transaction>, w: &mut SnapWriter) {
    w.put_usize(q.len());
    for txn in q {
        txn.save_state(w);
    }
}

fn load_txn_queue(r: &mut SnapReader<'_>) -> Result<VecDeque<Transaction>, SnapError> {
    let len = r.take_len(26)?;
    let mut q = VecDeque::with_capacity(len);
    for _ in 0..len {
        q.push_back(Transaction::load_state(r)?);
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn tiny_system() -> MemorySystem {
        MemorySystem::new(MemConfig::tiny()).unwrap()
    }

    /// Address of (rank, bank, row, col) under the tiny geometry's default
    /// mapping.
    fn addr_of(mem: &MemorySystem, rank: u32, bank: u32, row: u32, column: u32) -> u64 {
        mem.decoder()
            .encode(crate::address::DecodedAddr {
                rank,
                bank,
                row,
                column,
            })
            .unwrap()
    }

    #[test]
    fn single_read_latency_is_service_time() {
        let mut mem = tiny_system();
        let t = TimingParams::paper_pcm();
        mem.enqueue(MemOp::Read, 0, ServiceClass::Read).unwrap();
        let done = mem.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].latency(), t.read_cycles() + t.burst_cycles());
        assert_eq!(done[0].queue_delay(), 0);
    }

    #[test]
    fn write_classes_have_distinct_latencies() {
        let t = TimingParams::paper_pcm();
        let mut mem = tiny_system();
        mem.enqueue(MemOp::Write, 0, ServiceClass::Write).unwrap();
        let full = mem.drain()[0].latency();
        assert_eq!(full, t.write_cycles());

        let mut mem = tiny_system();
        mem.enqueue(MemOp::Write, 0, ServiceClass::ResetOnlyWrite)
            .unwrap();
        let fast = mem.drain()[0].latency();
        assert_eq!(fast, t.reset_cycles());
        assert!(fast < full);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut mem = tiny_system();
        let a = addr_of(&mem, 0, 0, 0, 0);
        let b = addr_of(&mem, 0, 0, 1, 0); // same bank, different row
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Read, b, ServiceClass::Read).unwrap();
        let done = mem.drain();
        let write = done.iter().find(|c| c.op == MemOp::Write).unwrap();
        let read = done.iter().find(|c| c.op == MemOp::Read).unwrap();
        // The read arrived while the long write occupied the bank, so its
        // latency includes the wait (write blocking - the paper's read
        // latency effect).
        assert!(read.start >= write.finish);
        assert!(read.queue_delay() > 0);
    }

    #[test]
    fn different_banks_overlap() {
        let mut mem = tiny_system();
        let a = addr_of(&mem, 0, 0, 0, 0);
        let b = addr_of(&mem, 0, 1, 0, 0);
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Write, b, ServiceClass::Write).unwrap();
        let done = mem.drain();
        let starts: Vec<_> = done.iter().map(|c| c.start).collect();
        // Second write starts after only the burst-bus gap, not the full
        // write service time.
        let burst = TimingParams::paper_pcm().burst_cycles();
        assert_eq!(starts[1].saturating_sub(starts[0]), burst);
    }

    #[test]
    fn reads_prioritized_over_writes() {
        let mut mem = tiny_system();
        let w = addr_of(&mem, 0, 0, 0, 0);
        let r = addr_of(&mem, 0, 0, 1, 0);
        // Enqueue a write then a read to the same bank at the same cycle:
        // the write issues first (it was tried first while the queue was
        // otherwise empty), but with several writes queued behind, a read
        // arriving later still jumps ahead of them.
        mem.enqueue(MemOp::Write, w, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Write, w, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Write, w, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Read, r, ServiceClass::Read).unwrap();
        let done = mem.drain();
        let read_finish = done.iter().find(|c| c.op == MemOp::Read).unwrap().finish;
        let last_write_finish = done
            .iter()
            .filter(|c| c.op == MemOp::Write)
            .map(|c| c.finish)
            .max()
            .unwrap();
        assert!(
            read_finish < last_write_finish,
            "read must overtake queued writes"
        );
    }

    #[test]
    fn queue_full_is_reported() {
        let mut mem = tiny_system();
        let cap = mem.config().write_queue_capacity;
        // Saturate one bank so nothing drains.
        let a = addr_of(&mem, 0, 0, 0, 0);
        let mut rejected = false;
        for _ in 0..=cap + 2 {
            match mem.enqueue(MemOp::Write, a, ServiceClass::Write) {
                Ok(_) => {}
                Err(SimError::QueueFull { capacity }) => {
                    assert_eq!(capacity, cap);
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected);
        // Draining clears the backlog and subsequent enqueues succeed.
        mem.drain();
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
    }

    #[test]
    fn mismatched_class_is_rejected() {
        let mut mem = tiny_system();
        assert!(mem.enqueue(MemOp::Read, 0, ServiceClass::Write).is_err());
        assert!(mem.enqueue(MemOp::Write, 0, ServiceClass::Read).is_err());
        assert!(mem
            .enqueue(MemOp::Read, 0, ServiceClass::RankRefresh)
            .is_err());
    }

    #[test]
    fn time_regression_is_rejected() {
        let mut mem = tiny_system();
        mem.advance_to(100).unwrap();
        assert!(matches!(
            mem.advance_to(50),
            Err(SimError::TimeRegression {
                now: 100,
                requested: 50
            })
        ));
    }

    #[test]
    fn rank_idleness_tracks_queues_and_banks() {
        let mut mem = tiny_system();
        assert!(mem.is_rank_idle(0));
        assert!(mem.is_rank_idle(1));
        let a = addr_of(&mem, 0, 0, 0, 0);
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        assert!(!mem.is_rank_idle(0), "bank busy");
        assert!(mem.is_rank_idle(1), "other rank unaffected");
        mem.drain();
        assert!(mem.is_rank_idle(0));
    }

    #[test]
    fn rank_refresh_occupies_all_listed_banks() {
        let mut mem = tiny_system();
        let t = TimingParams::paper_pcm();
        let banks = mem.config().geometry.banks_per_rank;
        let rows: Vec<(u32, u32)> = (0..banks).map(|b| (b, 7)).collect();
        let first = mem.enqueue_rank_refresh(0, &rows).unwrap();
        assert_eq!(first, 0, "fresh system assigns ids from zero");
        assert!(!mem.is_rank_idle(0));
        let done = mem.drain();
        assert_eq!(done.len(), banks as usize);
        let dur = t.rank_refresh_cycles(banks);
        for c in &done {
            assert_eq!(c.class, ServiceClass::RankRefresh);
            assert!(!c.preempted);
            assert_eq!(c.finish - c.start, dur);
        }
        assert_eq!(mem.stats().refreshes_completed, u64::from(banks));
    }

    #[test]
    fn write_pausing_preempts_refresh() {
        let mut mem = tiny_system();
        let rows: Vec<(u32, u32)> = vec![(0, 5), (1, 5)];
        mem.enqueue_rank_refresh(0, &rows).unwrap();
        // Refresh is now in flight on banks 0 and 1 of rank 0. A demand
        // write to bank 0 preempts that bank's refresh.
        let a = addr_of(&mem, 0, 0, 3, 0);
        mem.advance_to(2).unwrap();
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        let done = mem.drain();
        let preempted: Vec<_> = done.iter().filter(|c| c.preempted).collect();
        assert_eq!(preempted.len(), 1, "exactly bank 0's refresh row aborted");
        let write = done
            .iter()
            .find(|c| c.op == MemOp::Write && c.class == ServiceClass::Write)
            .unwrap();
        // The write started immediately at its arrival cycle - it did not
        // wait out the refresh.
        assert_eq!(write.queue_delay(), 0);
        // Bank 1's refresh still completed.
        assert_eq!(mem.stats().refreshes_completed, 1);
        assert_eq!(mem.stats().refreshes_preempted, 1);
    }

    #[test]
    fn refresh_waits_for_busy_banks() {
        let mut mem = tiny_system();
        let a = addr_of(&mem, 0, 0, 0, 0);
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        mem.enqueue_rank_refresh(0, &[(0, 9)]).unwrap();
        let done = mem.drain();
        let write = done
            .iter()
            .find(|c| c.class == ServiceClass::Write)
            .unwrap();
        let refresh = done
            .iter()
            .find(|c| c.class == ServiceClass::RankRefresh)
            .unwrap();
        assert!(
            refresh.start >= write.finish,
            "refresh must wait for the demand write"
        );
        assert!(!refresh.preempted);
    }

    #[test]
    fn refresh_batch_validation() {
        let mut mem = tiny_system();
        assert!(mem.enqueue_rank_refresh(99, &[(0, 0)]).is_err());
        assert!(mem.enqueue_rank_refresh(0, &[]).is_err());
        assert!(mem.enqueue_rank_refresh(0, &[(99, 0)]).is_err());
        assert!(mem.enqueue_rank_refresh(0, &[(0, 9999)]).is_err());
        assert!(
            mem.enqueue_rank_refresh(0, &[(0, 1), (0, 2)]).is_err(),
            "duplicate bank"
        );
    }

    #[test]
    fn advance_to_returns_completions_in_finish_order() {
        let mut mem = tiny_system();
        let a = addr_of(&mem, 0, 0, 0, 0);
        let b = addr_of(&mem, 0, 1, 0, 0);
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        mem.enqueue(MemOp::Write, b, ServiceClass::ResetOnlyWrite)
            .unwrap();
        let done = mem.advance_to(10_000).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done[0].finish <= done[1].finish);
        // The fast write finished first even though enqueued second.
        assert_eq!(done[0].class, ServiceClass::ResetOnlyWrite);
    }

    #[test]
    fn write_drain_mode_prioritizes_writes_when_queue_fills() {
        let mut mem = tiny_system();
        let high = mem.config().write_high_watermark;
        // Fill the write queue to the high watermark against one bank. The
        // first write issues immediately, so one extra enqueue is needed for
        // the *queued* occupancy to reach the watermark.
        let a = addr_of(&mem, 1, 2, 0, 0);
        for _ in 0..=high {
            mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        }
        // Now a read to the same bank: in drain mode, writes keep priority.
        let r = addr_of(&mem, 1, 2, 1, 0);
        mem.enqueue(MemOp::Read, r, ServiceClass::Read).unwrap();
        let done = mem.drain();
        let read = done.iter().find(|c| c.op == MemOp::Read).unwrap();
        let writes_before_read = done
            .iter()
            .filter(|c| c.op == MemOp::Write && c.finish <= read.start)
            .count();
        // The read could not bypass all queued writes: drain mode forced at
        // least (high - low) writes ahead of it.
        let min_ahead = mem.config().write_high_watermark - mem.config().write_low_watermark;
        assert!(
            writes_before_read >= min_ahead,
            "expected >= {min_ahead} writes to finish before the read, got {writes_before_read}"
        );
    }

    #[test]
    fn snapshot_mid_flight_resumes_bit_identically() {
        use crate::snap::{SnapReader, SnapWriter};
        // Phase 1: mixed demand + refresh traffic, stopped mid-flight so
        // queues, banks, the pending heap, and refresh plumbing are all
        // populated at snapshot time.
        let mut a = tiny_system();
        for i in 0..20u64 {
            let (op, class) = if i % 3 == 0 {
                (MemOp::Read, ServiceClass::Read)
            } else {
                (MemOp::Write, ServiceClass::Write)
            };
            let _ = a.enqueue(op, i * 64, class);
            a.advance_to(a.now() + 13).unwrap();
        }
        a.enqueue_rank_refresh(1, &[(0, 5), (1, 6)]).unwrap();

        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut r = SnapReader::new(&bytes);
        b.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        // Restored state re-serializes to the identical payload.
        let mut w2 = SnapWriter::new();
        b.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // Phase 2: identical traffic into both; final state must match
        // byte-for-byte in its Debug rendering.
        for mem in [&mut a, &mut b] {
            for i in 20..40u64 {
                let _ = mem.enqueue(MemOp::Write, i * 64, ServiceClass::ResetOnlyWrite);
                mem.advance_to(mem.now() + 9).unwrap();
            }
            mem.drain();
        }
        assert_eq!(format!("{:#?}", a.stats()), format!("{:#?}", b.stats()));
        assert_eq!(a.wear().summary(), b.wear().summary());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn queued_refresh_id_runs_round_trip_and_reject_tampering() {
        use crate::snap::{SnapError, SnapReader, SnapWriter};
        // Occupy bank 0 of rank 0 with a demand write so the refresh
        // batch cannot issue and stays queued across the snapshot.
        let mut mem = tiny_system();
        let a = addr_of(&mem, 0, 0, 3, 0);
        mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
        let first = mem.enqueue_rank_refresh(0, &[(0, 5), (1, 6)]).unwrap();
        assert_eq!(first, 1, "one demand id handed out before the batch");

        let mut w = SnapWriter::new();
        mem.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = MemorySystem::new(MemConfig::tiny()).unwrap();
        let mut r = SnapReader::new(&bytes);
        b.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        let mut w2 = SnapWriter::new();
        b.save_state(&mut w2);
        assert_eq!(
            w2.into_bytes(),
            bytes,
            "queued id runs re-serialize identically"
        );
        let done = b.drain();
        assert!(
            done.iter()
                .any(|c| c.class == ServiceClass::RankRefresh && c.id == first + 1),
            "restored batch issues with its original consecutive ids"
        );

        // Ids are assigned from a monotonic counter, so a snapshot whose
        // id list is not a consecutive run is corrupt — restore must say
        // so instead of silently renumbering. The queued run serializes
        // as [len=2, first, first+1]; flip the second id.
        let needle: Vec<u8> = [2u64, first, first + 1]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("queued id run present in payload");
        let mut tampered = bytes.clone();
        tampered[pos + 16..pos + 24].copy_from_slice(&(first + 7).to_le_bytes());
        let mut c = MemorySystem::new(MemConfig::tiny()).unwrap();
        let err = c
            .restore_state(&mut SnapReader::new(&tampered))
            .unwrap_err();
        assert_eq!(err, SnapError::Corrupt("non-consecutive refresh ids"));
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        use crate::snap::{SnapReader, SnapWriter};
        let a = tiny_system();
        let mut w = SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut cfg = MemConfig::tiny();
        cfg.geometry.ranks = 1;
        let mut b = MemorySystem::new(cfg).unwrap();
        let mut r = SnapReader::new(&bytes);
        assert!(b.restore_state(&mut r).is_err());
    }

    #[test]
    fn stats_accumulate_across_advances() {
        let mut mem = tiny_system();
        for i in 0..10u64 {
            let _ = mem.enqueue(MemOp::Read, i * 64, ServiceClass::Read);
            mem.advance_to(mem.now() + 50).unwrap();
        }
        mem.drain();
        assert_eq!(mem.stats().read_latency.count, 10);
        assert!(mem.stats().read_latency.mean() > 0.0);
    }
}

#[cfg(test)]
mod row_policy_tests {
    use super::*;
    use crate::config::RowPolicy;
    use crate::timing::TimingParams;

    fn open_page_system() -> MemorySystem {
        let mut cfg = MemConfig::tiny();
        cfg.row_policy = RowPolicy::OpenPage;
        MemorySystem::new(cfg).unwrap()
    }

    #[test]
    fn open_page_read_hits_are_faster() {
        let t = TimingParams::paper_pcm();
        let mut mem = open_page_system();
        // First read opens the row (full latency)...
        mem.enqueue(MemOp::Read, 0, ServiceClass::Read).unwrap();
        let first = mem.drain()[0].latency();
        assert_eq!(first, t.read_cycles() + t.burst_cycles());
        // ...the second read of the same row hits the row buffer.
        mem.enqueue(MemOp::Read, 64, ServiceClass::Read).unwrap();
        let second = mem.drain()[0].latency();
        assert_eq!(second, t.row_hit_read_cycles() + t.burst_cycles());
        assert!(second < first);
    }

    #[test]
    fn open_page_misses_pay_full_latency() {
        let t = TimingParams::paper_pcm();
        let mut mem = open_page_system();
        mem.enqueue(MemOp::Read, 0, ServiceClass::Read).unwrap();
        mem.drain();
        // A different row of the same bank: conflict, full latency again.
        let g = mem.config().geometry;
        let other_row = mem
            .decoder()
            .encode(crate::address::DecodedAddr {
                rank: 0,
                bank: 0,
                row: 1,
                column: 0,
            })
            .unwrap();
        assert_eq!(mem.decoder().decode(other_row).bank, 0);
        assert_eq!(mem.decoder().decode(other_row).row, 1);
        mem.enqueue(MemOp::Read, other_row, ServiceClass::Read)
            .unwrap();
        let miss = mem.drain()[0].latency();
        assert_eq!(miss, t.read_cycles() + t.burst_cycles());
        let _ = g;
    }

    #[test]
    fn closed_page_never_hits() {
        let t = TimingParams::paper_pcm();
        let mut mem = MemorySystem::new(MemConfig::tiny()).unwrap();
        for _ in 0..3 {
            mem.enqueue(MemOp::Read, 0, ServiceClass::Read).unwrap();
            let l = mem.drain()[0].latency();
            assert_eq!(l, t.read_cycles() + t.burst_cycles());
        }
    }

    #[test]
    fn write_pausing_off_makes_demand_wait() {
        let mut cfg = MemConfig::tiny();
        cfg.write_pausing = false;
        let mut mem = MemorySystem::new(cfg).unwrap();
        mem.enqueue_rank_refresh(0, &[(0, 5)]).unwrap();
        mem.advance_to(2).unwrap();
        // A demand write to the refreshing bank cannot preempt it.
        let addr = mem
            .decoder()
            .encode(crate::address::DecodedAddr {
                rank: 0,
                bank: 0,
                row: 3,
                column: 0,
            })
            .unwrap();
        mem.enqueue(MemOp::Write, addr, ServiceClass::Write)
            .unwrap();
        let done = mem.drain();
        let refresh = done
            .iter()
            .find(|c| c.class == ServiceClass::RankRefresh)
            .unwrap();
        let write = done
            .iter()
            .find(|c| c.class == ServiceClass::Write)
            .unwrap();
        assert!(!refresh.preempted, "pausing disabled: refresh completes");
        assert!(
            write.start >= refresh.finish,
            "demand write waited out the refresh"
        );
    }
}

#[cfg(test)]
mod scheduler_tests {
    use super::*;
    use crate::config::SchedulerPolicy;

    fn system_with(policy: SchedulerPolicy) -> MemorySystem {
        let mut cfg = MemConfig::tiny();
        cfg.scheduler = policy;
        MemorySystem::new(cfg).unwrap()
    }

    fn addr_of(mem: &MemorySystem, rank: u32, bank: u32, row: u32) -> u64 {
        mem.decoder()
            .encode(crate::address::DecodedAddr {
                rank,
                bank,
                row,
                column: 0,
            })
            .unwrap()
    }

    #[test]
    fn strict_fcfs_head_blocks_younger_ready_work() {
        // Two writes to bank A back-to-back, then one to free bank B. Under
        // FR-FCFS the bank-B write bypasses the blocked head; under strict
        // FCFS it must wait its turn.
        let run = |policy| {
            let mut mem = system_with(policy);
            let a = addr_of(&mem, 0, 0, 0);
            let b = addr_of(&mem, 0, 1, 0);
            mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
            mem.enqueue(MemOp::Write, a, ServiceClass::Write).unwrap();
            mem.enqueue(MemOp::Write, b, ServiceClass::Write).unwrap();
            let done = mem.drain();
            done.iter().find(|c| c.addr == b).unwrap().start
        };
        let frfcfs_start = run(SchedulerPolicy::FrFcfs);
        let fcfs_start = run(SchedulerPolicy::StrictFcfs);
        assert!(
            fcfs_start > frfcfs_start,
            "strict FCFS must delay the bank-B write ({fcfs_start} vs {frfcfs_start})"
        );
    }

    #[test]
    fn read_always_first_never_drains_writes() {
        let mut mem = system_with(SchedulerPolicy::ReadAlwaysFirst);
        let cap = mem.config().write_queue_capacity;
        let w = addr_of(&mem, 1, 2, 0);
        // Saturate the write queue past the (ignored) high watermark.
        for _ in 0..cap {
            let _ = mem.enqueue(MemOp::Write, w, ServiceClass::Write);
        }
        let r = addr_of(&mem, 1, 2, 1);
        mem.enqueue(MemOp::Read, r, ServiceClass::Read).unwrap();
        let done = mem.drain();
        let read = done.iter().find(|c| c.op == MemOp::Read).unwrap();
        let writes_before_read = done
            .iter()
            .filter(|c| c.op == MemOp::Write && c.finish <= read.start)
            .count();
        // Only the in-flight write can precede the read; drain mode never
        // forces more ahead of it.
        assert!(
            writes_before_read <= 1,
            "read must bypass the whole write queue, {writes_before_read} writes got ahead"
        );
    }

    #[test]
    fn policies_conserve_work() {
        for policy in [
            SchedulerPolicy::FrFcfs,
            SchedulerPolicy::StrictFcfs,
            SchedulerPolicy::ReadAlwaysFirst,
        ] {
            let mut mem = system_with(policy);
            let mut submitted = 0;
            for i in 0..40u64 {
                mem.advance_to(i * 10).unwrap();
                let op = if i % 2 == 0 {
                    MemOp::Read
                } else {
                    MemOp::Write
                };
                let class = if i % 2 == 0 {
                    ServiceClass::Read
                } else {
                    ServiceClass::Write
                };
                if mem.enqueue(op, i * 64, class).is_ok() {
                    submitted += 1;
                }
            }
            mem.drain();
            let s = mem.stats();
            assert_eq!(
                s.read_latency.count + s.write_latency.count,
                submitted,
                "{policy:?}"
            );
        }
    }
}
