//! Golden epoch-series regression test: one small cell per architecture,
//! its JSON-Lines export checked byte-for-byte against captured
//! fixtures under `tests/golden/`.
//!
//! This freezes the exporter schema (key names, column order, number
//! formatting, histogram encoding) as well as the recorded counters; an
//! intentional schema or behaviour change must regenerate the fixtures
//! (and say so in review):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p wom-pcm --test golden_epochs
//! ```

use pcm_trace::synth::{Suite, WorkloadProfile};
use std::path::PathBuf;
use wom_pcm::observe::write_jsonl;
use wom_pcm::{Architecture, SystemBuilder};

const RECORDS: usize = 4_000;
const SEED: u64 = 2014;
const EPOCH_CYCLES: u64 = 5_000;

/// Same fixed workload as the golden-metrics test.
fn golden_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "golden".into(),
        suite: Suite::SpecCpu2006,
        read_fraction: 0.55,
        working_set_bytes: 32 * 1024,
        hot_fraction: 0.6,
        hot_set_fraction: 0.15,
        sequential_run: 0.3,
        row_rewrite_prob: 0.55,
        read_reuse_prob: 0.25,
        mean_gap_cycles: 40.0,
        burst_len: 4,
        reuse_window: 48,
        scatter_pages: false,
    }
}

fn render_epochs(arch: Architecture) -> String {
    let trace = golden_profile().generate(SEED, RECORDS);
    let mut session = SystemBuilder::tiny(arch)
        .epoch_cycles(EPOCH_CYCLES)
        .open()
        .expect("valid config");
    session.feed(&trace).expect("trace runs");
    session.finish().expect("trace finishes");
    let series = session.into_epochs().expect("observation was enabled");
    let mut out = Vec::new();
    write_jsonl(
        &mut out,
        &series,
        &[("arch", arch.label()), ("workload", "golden")],
    )
    .expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("exporter emits UTF-8")
}

fn golden_path(arch: Architecture) -> PathBuf {
    let stem = match arch {
        Architecture::Baseline => "baseline",
        Architecture::WomCode => "wom-code",
        Architecture::WomCodeRefresh => "wom-code-refresh",
        Architecture::Wcpcm => "wcpcm",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{stem}-epochs.jsonl"))
}

fn check(arch: Architecture) {
    let rendered = render_epochs(arch);
    let path = golden_path(arch);
    // GOLDEN_REGEN gates regeneration of the checked-in files; it never
    // affects a verifying run, so the env ban does not apply.
    #[allow(clippy::disallowed_methods)]
    let regen = std::env::var_os("GOLDEN_REGEN").is_some();
    if regen {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GOLDEN_REGEN=1 to capture",
            path.display()
        )
    });
    if rendered != expected {
        for (i, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
            if got != want {
                panic!(
                    "golden epochs diverge for {} at line {}:\n  expected: {want}\n  actual:   {got}",
                    arch.label(),
                    i + 1
                );
            }
        }
        panic!(
            "golden epochs diverge for {} (line counts differ: {} vs {})",
            arch.label(),
            rendered.lines().count(),
            expected.lines().count()
        );
    }
}

#[test]
fn baseline_reproduces_golden_epochs() {
    check(Architecture::Baseline);
}

#[test]
fn wom_code_reproduces_golden_epochs() {
    check(Architecture::WomCode);
}

#[test]
fn wom_code_refresh_reproduces_golden_epochs() {
    check(Architecture::WomCodeRefresh);
}

#[test]
fn wcpcm_reproduces_golden_epochs() {
    check(Architecture::Wcpcm);
}
