//! Error types for the PCM memory-system simulator.

use core::fmt;

/// Errors returned by the simulator's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The controller's transaction queue is full; the caller must advance
    /// simulated time to drain it before submitting more work.
    QueueFull {
        /// Capacity of the queue that rejected the transaction.
        capacity: usize,
    },
    /// A physical address decoded outside the configured geometry.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// Total capacity in bytes.
        capacity: u64,
    },
    /// A rank, bank, or row index exceeded the configured geometry.
    IndexOutOfRange {
        /// Which index kind was out of range ("rank", "bank", "row", ...).
        what: &'static str,
        /// The offending index.
        index: u64,
        /// Number of valid indices.
        limit: u64,
    },
    /// The requested simulated time is in the past.
    TimeRegression {
        /// Current simulator time in cycles.
        now: u64,
        /// The (earlier) requested time.
        requested: u64,
    },
    /// The configuration is inconsistent (zero-sized geometry, zero clock,
    /// etc.). The string names the offending field.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "transaction queue full (capacity {capacity})")
            }
            Self::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr:#x} outside the {capacity}-byte address space"
                )
            }
            Self::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            Self::TimeRegression { now, requested } => {
                write!(f, "cannot advance to cycle {requested}, already at {now}")
            }
            Self::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(SimError::AddressOutOfRange {
            addr: 16,
            capacity: 8
        }
        .to_string()
        .contains("0x10"));
        assert!(SimError::InvalidConfig("ranks = 0".into())
            .to_string()
            .contains("ranks"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<SimError>();
    }
}
