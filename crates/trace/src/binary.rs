//! A compact binary trace container.
//!
//! The DRAMSim2 text format ([`crate::format`]) is interoperable but
//! bulky (~25 bytes/record); paper-scale captures run to hundreds of
//! millions of records. This container stores records in 17 fixed bytes —
//! little-endian `cycle: u64`, `addr: u64`, `op: u8` — behind an 8-byte
//! magic header with a format version.

use crate::record::{TraceOp, TraceRecord};
use std::io::{Read, Write};

/// File magic: `WOMTRC` + 2-byte version.
const MAGIC: &[u8; 8] = b"WOMTRC\x00\x01";
const RECORD_BYTES: usize = 17;

/// Errors from the binary container.
#[derive(Debug)]
#[non_exhaustive]
pub enum BinaryTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the expected magic/version.
    BadMagic,
    /// The stream ends in the middle of a record.
    Truncated {
        /// Complete records read before the truncation.
        records_read: u64,
    },
    /// A record's op byte is neither 0 (read) nor 1 (write).
    BadOp {
        /// The offending byte.
        value: u8,
        /// 0-based index of the bad record.
        index: u64,
    },
}

impl core::fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "binary trace i/o error: {e}"),
            Self::BadMagic => f.write_str("not a womtrc binary trace (bad magic or version)"),
            Self::Truncated { records_read } => {
                write!(f, "binary trace truncated after {records_read} records")
            }
            Self::BadOp { value, index } => {
                write!(f, "bad op byte {value:#x} in record {index}")
            }
        }
    }
}

impl std::error::Error for BinaryTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BinaryTraceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `records` to `writer` in the binary container format. A `&mut`
/// reference may be passed as the writer.
///
/// # Errors
///
/// Returns [`BinaryTraceError::Io`] on write failure.
pub fn write_binary<W: Write, I: IntoIterator<Item = TraceRecord>>(
    mut writer: W,
    records: I,
) -> Result<u64, BinaryTraceError> {
    writer.write_all(MAGIC)?;
    let mut n = 0u64;
    let mut buf = [0u8; RECORD_BYTES];
    for r in records {
        buf[0..8].copy_from_slice(&r.cycle.to_le_bytes());
        buf[8..16].copy_from_slice(&r.addr.to_le_bytes());
        buf[16] = match r.op {
            TraceOp::Read => 0,
            TraceOp::Write => 1,
        };
        writer.write_all(&buf)?;
        n += 1;
    }
    Ok(n)
}

/// Reads a whole binary trace from `reader`. A `&mut` reference may be
/// passed as the reader.
///
/// # Errors
///
/// See [`BinaryTraceError`].
pub fn read_binary<R: Read>(mut reader: R) -> Result<Vec<TraceRecord>, BinaryTraceError> {
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| BinaryTraceError::BadMagic)?;
    if &magic != MAGIC {
        return Err(BinaryTraceError::BadMagic);
    }
    let mut out = Vec::new();
    let mut buf = [0u8; RECORD_BYTES];
    loop {
        match read_record(&mut reader, &mut buf) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                return Err(match e.kind() {
                    std::io::ErrorKind::UnexpectedEof => BinaryTraceError::Truncated {
                        records_read: out.len() as u64,
                    },
                    _ => BinaryTraceError::Io(e),
                })
            }
        }
        // Infallible split: RECORD_BYTES = 8 (cycle) + 8 (addr) + 1 (op).
        let [c0, c1, c2, c3, c4, c5, c6, c7, a0, a1, a2, a3, a4, a5, a6, a7, op_byte] = buf;
        let cycle = u64::from_le_bytes([c0, c1, c2, c3, c4, c5, c6, c7]);
        let addr = u64::from_le_bytes([a0, a1, a2, a3, a4, a5, a6, a7]);
        let op = match op_byte {
            0 => TraceOp::Read,
            1 => TraceOp::Write,
            value => {
                return Err(BinaryTraceError::BadOp {
                    value,
                    index: out.len() as u64,
                })
            }
        };
        out.push(TraceRecord { cycle, addr, op });
    }
    Ok(out)
}

/// Reads one record into `buf`; `Ok(false)` on a clean end of stream.
fn read_record<R: Read>(reader: &mut R, buf: &mut [u8; RECORD_BYTES]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < RECORD_BYTES {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "partial record",
                ))
            };
        }
        filled += n;
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::benchmarks;

    #[test]
    fn round_trip_preserves_records() {
        let records = benchmarks::by_name("qsort").unwrap().generate(5, 4_000);
        let mut bytes = Vec::new();
        let n = write_binary(&mut bytes, records.iter().copied()).unwrap();
        assert_eq!(n, 4_000);
        assert_eq!(bytes.len(), 8 + 4_000 * RECORD_BYTES);
        assert_eq!(read_binary(bytes.as_slice()).unwrap(), records);
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let records = benchmarks::by_name("mad").unwrap().generate(9, 2_000);
        let mut bin = Vec::new();
        write_binary(&mut bin, records.iter().copied()).unwrap();
        let mut text = Vec::new();
        crate::format::write_trace(&mut text, records.iter().copied()).unwrap();
        // Text size varies with address magnitude; binary is fixed-width
        // and always smaller.
        assert!(
            bin.len() < text.len(),
            "binary {} vs text {}",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bytes = Vec::new();
        write_binary(&mut bytes, std::iter::empty()).unwrap();
        assert_eq!(read_binary(bytes.as_slice()).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            read_binary(&b"NOTATRACE"[..]),
            Err(BinaryTraceError::BadMagic)
        ));
        assert!(matches!(
            read_binary(&b"WO"[..]),
            Err(BinaryTraceError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_reported_with_progress() {
        let records = benchmarks::by_name("qsort").unwrap().generate(1, 10);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, records.iter().copied()).unwrap();
        bytes.truncate(8 + 5 * RECORD_BYTES + 3); // mid-record
        match read_binary(bytes.as_slice()) {
            Err(BinaryTraceError::Truncated { records_read }) => assert_eq!(records_read, 5),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn bad_op_byte_is_rejected() {
        let mut bytes = Vec::new();
        write_binary(&mut bytes, vec![TraceRecord::new(1, 64, TraceOp::Read)]).unwrap();
        let last = bytes.len() - 1;
        bytes[last] = 7;
        match read_binary(bytes.as_slice()) {
            Err(BinaryTraceError::BadOp { value: 7, index: 0 }) => {}
            other => panic!("expected bad op, got {other:?}"),
        }
    }
}
